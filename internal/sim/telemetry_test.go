package sim

import (
	"encoding/json"
	"testing"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/sched"
	"saath/internal/telemetry"
	"saath/internal/trace"

	_ "saath/internal/sched/aalo"
)

// telemetryTrace is a small contended workload: 12 coflows fanning
// into 2 aggregator ports on an 8-port cluster.
func telemetryTrace(seed int64) *trace.Trace {
	tr, err := trace.SynthesizeIncast(trace.FanConfig{
		Seed: seed, NumPorts: 8, NumCoFlows: 12,
		MeanInterArrival: 10 * coflow.Millisecond,
		Degree:           4, Skew: 0.5, Hotspots: 2,
		MinSize: 100 * coflow.KB, MaxSize: 4 * coflow.MB,
	}, "telemetry-tiny")
	if err != nil {
		panic(err)
	}
	return tr
}

func runWithSuite(t testing.TB, seed int64) (*Result, *telemetry.Metrics) {
	s, err := sched.New("aalo", sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	suite := telemetry.NewSuite(telemetry.Spec{Enabled: true, Seed: 7})
	res, err := Run(telemetryTrace(seed), s, Config{Probes: []telemetry.Probe{suite}})
	if err != nil {
		t.Fatal(err)
	}
	return res, suite.Metrics()
}

// TestEngineProbeObservations checks the engine feeds probes coherent
// per-interval state: one observation per scheduling round, admitted /
// completed counters reaching the trace size, and the utilization
// series averaging to exactly Result.AvgEgressUtilization — proof that
// the Result statistic and the telemetry stream share one emission
// path (the PR 1 sorted-accumulation determinism fix included).
func TestEngineProbeObservations(t *testing.T) {
	res, m := runWithSuite(t, 1)
	if m.Intervals != int64(res.Intervals) {
		t.Fatalf("probe saw %d intervals, engine ran %d", m.Intervals, res.Intervals)
	}
	adm := m.FindSeries(telemetry.SeriesAdmittedCoFlows)
	if adm == nil || adm.Last != 12 {
		t.Fatalf("admitted series = %+v, want last 12", adm)
	}
	util := m.FindSeries(telemetry.SeriesEgressUtil)
	if util == nil || util.Count != int64(res.Intervals) {
		t.Fatalf("util series = %+v", util)
	}
	// Same emission path ⇒ the series mean IS the Result aggregate
	// (both are sum/len over identical float64 terms, added in the
	// same order — bitwise equality, no tolerance).
	if util.Mean != res.AvgEgressUtilization {
		t.Fatalf("telemetry util mean %v != result %v", util.Mean, res.AvgEgressUtilization)
	}
	if h := m.FindHistogram(telemetry.HistIngressOccupancy); h == nil || h.Count == 0 {
		t.Fatalf("ingress occupancy histogram empty: %+v", h)
	}
}

// TestEngineProbeDeterminism: two identical runs export byte-identical
// telemetry. Map-order accumulation anywhere on the emission path
// would (overwhelmingly likely) flip low bits between runs.
func TestEngineProbeDeterminism(t *testing.T) {
	dump := func() []byte {
		_, m := runWithSuite(t, 3)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(dump()) != string(dump()) {
		t.Fatal("identical runs exported different telemetry")
	}
}

// TestUtilizationUnchangedByProbes: attaching probes must not perturb
// the simulation itself — results with and without telemetry are
// identical.
func TestUtilizationUnchangedByProbes(t *testing.T) {
	s, err := sched.New("aalo", sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Run(telemetryTrace(1), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := sched.New("aalo", sched.DefaultParams())
	suite := telemetry.NewSuite(telemetry.Spec{Enabled: true, Seed: 1})
	probed, err := Run(telemetryTrace(1), s2, Config{Probes: []telemetry.Probe{suite}})
	if err != nil {
		t.Fatal(err)
	}
	if bare.AvgEgressUtilization != probed.AvgEgressUtilization ||
		bare.Makespan != probed.Makespan || bare.AvgCCT() != probed.AvgCCT() {
		t.Fatalf("probes perturbed the simulation: %v/%v vs %v/%v",
			bare.AvgEgressUtilization, bare.Makespan, probed.AvgEgressUtilization, probed.Makespan)
	}
}

// observeFixture builds an engine mid-interval state directly (same
// package) so the emission path can be exercised in isolation.
func observeFixture(probes []telemetry.Probe) (*engine, *sched.RateVec) {
	cfg := Config{Probes: probes}.withDefaults()
	e := &engine{
		cfg:    cfg,
		fab:    fabric.New(4, cfg.PortRate),
		space:  coflow.NewIndexSpace(),
		result: &Result{Intervals: 1},
	}
	c := coflow.New(&coflow.Spec{ID: 1, Flows: []coflow.FlowSpec{
		{Src: 0, Dst: 2, Size: coflow.MB},
		{Src: 1, Dst: 3, Size: coflow.MB},
	}})
	e.space.Assign(c)
	e.active = []*coflow.CoFlow{c}
	e.snapScratch = append(e.snapScratch, c)
	alloc := sched.NewRateVec(e.space.FlowCap())
	alloc.Set(c.Flows[0].Idx, cfg.PortRate)
	alloc.Set(c.Flows[1].Idx, cfg.PortRate/2)
	return e, alloc
}

// TestObserveIntervalNoProbesZeroAlloc is the CI guard for the
// tentpole's zero-cost contract: with no probes attached, the
// per-interval emission path performs zero heap allocations.
func TestObserveIntervalNoProbesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e, alloc := observeFixture(nil)
	if n := testing.AllocsPerRun(200, func() { e.observeInterval(alloc) }); n != 0 {
		t.Fatalf("no-probe observeInterval allocates %.1f times per interval, want 0", n)
	}
}

// BenchmarkTelemetryEngine measures a full small simulation with the
// standard suite attached — the CI telemetry bench smoke.
func BenchmarkTelemetryEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := sched.New("aalo", sched.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		suite := telemetry.NewSuite(telemetry.Spec{Enabled: true, Seed: 7})
		if _, err := Run(telemetryTrace(1), s, Config{Probes: []telemetry.Probe{suite}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOffBaseline is the same simulation without probes,
// for eyeballing the overhead of the previous benchmark.
func BenchmarkTelemetryOffBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := sched.New("aalo", sched.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(telemetryTrace(1), s, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
