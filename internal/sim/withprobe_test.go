package sim

import (
	"testing"

	"saath/internal/telemetry"
)

type nopProbe struct{ id int }

func (nopProbe) Observe(*telemetry.Interval) {}

// TestConfigWithProbeCopySafe: WithProbe must never alias the
// receiver's probe array. The old append-with-full-slice idiom at call
// sites was correct but fragile — one naked append on a shared base
// config would hand two simulations the same probe. WithProbe owns
// that invariant in one place.
func TestConfigWithProbeCopySafe(t *testing.T) {
	base := Config{Probes: make([]telemetry.Probe, 1, 8)} // spare capacity invites aliasing
	base.Probes[0] = nopProbe{0}

	a := base.WithProbe(nopProbe{1})
	b := base.WithProbe(nopProbe{2})

	if len(base.Probes) != 1 {
		t.Fatalf("receiver mutated: %d probes", len(base.Probes))
	}
	if len(a.Probes) != 2 || len(b.Probes) != 2 {
		t.Fatalf("derived configs: %d and %d probes, want 2 and 2", len(a.Probes), len(b.Probes))
	}
	if a.Probes[1].(nopProbe).id != 1 || b.Probes[1].(nopProbe).id != 2 {
		t.Fatalf("sibling configs share a probe slot: %v vs %v", a.Probes[1], b.Probes[1])
	}
	// Writing through one derived config must not show through the other.
	a.Probes[0] = nopProbe{99}
	if base.Probes[0].(nopProbe).id != 0 || b.Probes[0].(nopProbe).id != 0 {
		t.Fatal("derived config aliases the base backing array")
	}
}
