package sim

import (
	"math/rand"
	"sort"
	"testing"

	"saath/internal/coflow"
)

// popAll drains q, returning events in pop order.
func popAll(q *eventQueue) []event {
	var out []event
	for {
		ev, ok := q.pop()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestEventQueueSimultaneousOrdering is the determinism property the
// engine's equivalence contract leans on: events sharing a timestamp
// pop in (kind priority, key, seq) order no matter what order they
// were pushed in. It pushes a mixed batch — several timestamps, every
// kind, colliding keys — in 200 random permutations and requires the
// identical pop sequence every time.
func TestEventQueueSimultaneousOrdering(t *testing.T) {
	var batch []event
	for _, tm := range []coflow.Time{0, 8000, 8000, 16000} {
		for kind := eventFlowDone; kind <= eventProbe; kind++ {
			for key := int64(0); key < 3; key++ {
				batch = append(batch, event{time: tm, kind: kind, key: key, spec: int(key)})
			}
		}
	}

	// The expected order, independent of seq: stable-sort by
	// (time, kind, key); ties beyond that keep push order, which the
	// reference push (in-order) realizes by construction.
	want := append([]event(nil), batch...)
	sort.SliceStable(want, func(i, j int) bool {
		a, b := want[i], want[j]
		if a.time != b.time {
			return a.time < b.time
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.key < b.key
	})

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(len(batch))
		var q eventQueue
		for _, i := range perm {
			q.push(batch[i])
		}
		got := popAll(&q)
		if len(got) != len(want) {
			t.Fatalf("trial %d: popped %d events, pushed %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].time != want[i].time || got[i].kind != want[i].kind || got[i].key != want[i].key {
				t.Fatalf("trial %d: pop[%d] = {t=%d kind=%d key=%d}, want {t=%d kind=%d key=%d}",
					trial, i, got[i].time, got[i].kind, got[i].key,
					want[i].time, want[i].kind, want[i].key)
			}
		}
	}
}

// TestEventQueueSeqBreaksFullTies exercises the last tiebreak level:
// events identical in (time, kind, key) must pop in push order.
func TestEventQueueSeqBreaksFullTies(t *testing.T) {
	var q eventQueue
	for i := 0; i < 50; i++ {
		q.push(event{time: 8000, kind: eventAvail, key: 0, spec: i})
	}
	for i, ev := range popAll(&q) {
		if ev.spec != i {
			t.Fatalf("pop[%d].spec = %d, want %d (push order)", i, ev.spec, i)
		}
	}
}

// TestEventQueueCancelRecycling models the Dynamics-restart scenario:
// predicted flow-completion events get cancelled when a restart wipes
// the flow's progress, their slots are recycled by later pushes, and
// the stale handles left behind must become harmless no-ops rather
// than cancelling whichever event inherited the slot.
func TestEventQueueCancelRecycling(t *testing.T) {
	var q eventQueue

	// Predict ten flow completions; a "restart" invalidates the even ones.
	handles := make([]eventHandle, 10)
	for i := range handles {
		handles[i] = q.push(event{time: coflow.Time(1000 * (i + 1)), kind: eventFlowDone, key: int64(i), spec: i})
	}
	for i := 0; i < 10; i += 2 {
		if !q.cancel(handles[i]) {
			t.Fatalf("cancel of live event %d reported no-op", i)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("after 5 cancels Len = %d, want 5", q.Len())
	}
	// Double-cancel is a detected no-op.
	if q.cancel(handles[0]) {
		t.Fatal("second cancel of the same handle reported success")
	}

	// New completions reuse the freed slots (no slot-table growth).
	slotsBefore := len(q.slots)
	reused := make([]eventHandle, 5)
	for i := range reused {
		reused[i] = q.push(event{time: coflow.Time(100 * (i + 1)), kind: eventFlowDone, key: int64(100 + i), spec: 100 + i})
	}
	if len(q.slots) != slotsBefore {
		t.Fatalf("slot table grew %d -> %d despite free slots", slotsBefore, len(q.slots))
	}

	// The recycled slots bumped their generation: every stale handle
	// must refuse to touch the event now occupying its old slot.
	for i := 0; i < 10; i += 2 {
		if q.cancel(handles[i]) {
			t.Fatalf("stale handle %d cancelled a recycled slot's new event", i)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d after stale cancels, want 10", q.Len())
	}

	// Remaining events (odd originals at 2000,4000,... and reused at
	// 100..500) still pop in exact time order.
	var times []coflow.Time
	for _, ev := range popAll(&q) {
		times = append(times, ev.time)
	}
	want := []coflow.Time{100, 200, 300, 400, 500, 2000, 4000, 6000, 8000, 10000}
	if len(times) != len(want) {
		t.Fatalf("drained %d events, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("pop[%d] at t=%d, want %d (full order: %v)", i, times[i], want[i], times)
		}
	}

	// A handle for an already-popped event is stale too.
	h := q.push(event{time: 1, kind: eventEpoch})
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if q.cancel(h) {
		t.Fatal("cancel succeeded on a popped event's handle")
	}
}

// TestEventQueueInterleavedRandomOps cross-checks the heap against a
// straightforward reference model under a random push/pop/cancel
// workload, verifying ordering and slot bookkeeping stay consistent.
func TestEventQueueInterleavedRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	type live struct {
		ev event
		h  eventHandle
	}
	var model []live
	seq := 0
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // push
			ev := event{
				time: coflow.Time(rng.Intn(50) * 1000),
				kind: eventKind(rng.Intn(5)),
				key:  int64(rng.Intn(4)),
				spec: seq,
			}
			seq++
			model = append(model, live{ev, q.push(ev)})
		case r < 8: // pop and compare against the model's minimum
			ev, ok := q.pop()
			if !ok {
				if len(model) != 0 {
					t.Fatalf("op %d: queue empty, model holds %d", op, len(model))
				}
				continue
			}
			best := 0
			for i := 1; i < len(model); i++ {
				a, b := model[i].ev, model[best].ev
				if a.time != b.time {
					if a.time < b.time {
						best = i
					}
				} else if a.kind != b.kind {
					if a.kind < b.kind {
						best = i
					}
				} else if a.key != b.key {
					if a.key < b.key {
						best = i
					}
				} // equal (time,kind,key): earlier push wins — model is in push order
			}
			if model[best].ev.spec != ev.spec {
				t.Fatalf("op %d: popped spec %d, model expects %d", op, ev.spec, model[best].ev.spec)
			}
			model = append(model[:best], model[best+1:]...)
		default: // cancel a random live event
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			if !q.cancel(model[i].h) {
				t.Fatalf("op %d: cancel of live event failed", op)
			}
			model = append(model[:i], model[i+1:]...)
		}
		if q.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, q.Len(), len(model))
		}
	}
}
