package sim

import "saath/internal/coflow"

// The discrete-event core: a deterministic min-heap of typed events.
//
// Ordering is total and explicit — (time, kind priority, key, seq) —
// so two runs of the same simulation pop events in exactly the same
// order regardless of push order, heap layout, or map iteration
// anywhere above. The key field carries a domain tiebreak (the trace
// spec index for arrivals, so simultaneous admissions replay in trace
// order, matching the tick engine's pending-list scan); seq is the
// push counter and breaks whatever remains.
//
// The queue is built for the engine's hot loop: events are stored by
// value in slot array + heap-of-slot-ids form, slots are recycled
// through a free list, and a steady-state pop/push pair allocates
// nothing (guarded by TestEngineEventSteadyStateZeroAlloc). Push
// returns a generation-stamped handle so a pending event — e.g. a
// predicted flow completion invalidated by a Dynamics restart — can be
// cancelled in O(log n) without leaving a tombstone; the generation
// check makes a stale handle (its slot already popped and recycled) a
// harmless no-op instead of cancelling an unrelated event.

// eventKind types the engine's events. The declaration order is the
// within-timestamp priority: exact-time flow completions resolve
// before the boundary's admissions, admissions before availability
// injections, those before the schedule epoch, and telemetry emission
// last — mirroring the tick loop's admit → refreshAvailability →
// schedule → observe sequence.
type eventKind uint8

const (
	// eventFlowDone is an exact-time flow/coflow completion. The event
	// engine uses it to release DAG dependents of a retired CoFlow at
	// its precise DoneAt (which is generally mid-interval).
	eventFlowDone eventKind = iota
	// eventArrival admits one trace spec at a δ boundary.
	eventArrival
	// eventAvail is the Dynamics/Pipelining injection seam: it flips a
	// CoFlow's pipelined flows to available once their delay elapses.
	eventAvail
	// eventEpoch recomputes the global schedule at a δ boundary.
	eventEpoch
	// eventProbe emits the epoch's telemetry observation to the
	// attached probes (only scheduled when probes exist).
	eventProbe
)

// event is one scheduled occurrence. Payload fields are a union: spec
// indexes e.pending for arrivals, co names the CoFlow for
// availability injections and completions.
type event struct {
	time coflow.Time
	kind eventKind
	key  int64 // deterministic tiebreak before seq
	spec int
	co   *coflow.CoFlow
}

// eventHandle names a pending event for cancellation. The zero handle
// is invalid (slot generations start at 1).
type eventHandle struct {
	slot int32
	gen  uint32
}

type eventSlot struct {
	ev  event
	seq uint64
	pos int32 // index into heap; -1 while free
	gen uint32
}

// eventQueue is the deterministic indexed min-heap. The zero value is
// ready to use.
type eventQueue struct {
	heap  []int32
	slots []eventSlot
	free  []int32
	seq   uint64
	// cancels counts successful cancellations for engine introspection.
	cancels int64
}

// Len returns the number of pending events.
func (q *eventQueue) Len() int { return len(q.heap) }

// less orders slot a strictly before slot b.
func (q *eventQueue) less(a, b int32) bool {
	sa, sb := &q.slots[a], &q.slots[b]
	if sa.ev.time != sb.ev.time {
		return sa.ev.time < sb.ev.time
	}
	if sa.ev.kind != sb.ev.kind {
		return sa.ev.kind < sb.ev.kind
	}
	if sa.ev.key != sb.ev.key {
		return sa.ev.key < sb.ev.key
	}
	return sa.seq < sb.seq
}

// push schedules ev and returns a handle valid until the event pops
// or is cancelled.
func (q *eventQueue) push(ev event) eventHandle {
	var id int32
	if n := len(q.free); n > 0 {
		id = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		id = int32(len(q.slots))
		q.slots = append(q.slots, eventSlot{})
	}
	s := &q.slots[id]
	q.seq++
	s.ev, s.seq, s.pos = ev, q.seq, int32(len(q.heap))
	if s.gen == 0 {
		s.gen = 1
	}
	q.heap = append(q.heap, id)
	q.siftUp(int(s.pos))
	return eventHandle{slot: id, gen: q.slots[id].gen}
}

// pop removes and returns the earliest event; ok is false on empty.
func (q *eventQueue) pop() (ev event, ok bool) {
	if len(q.heap) == 0 {
		return event{}, false
	}
	id := q.heap[0]
	ev = q.slots[id].ev
	q.removeAt(0)
	q.release(id)
	return ev, true
}

// peek returns the earliest event without removing it.
func (q *eventQueue) peek() (ev event, ok bool) {
	if len(q.heap) == 0 {
		return event{}, false
	}
	return q.slots[q.heap[0]].ev, true
}

// cancel removes the event named by h if it is still pending. It
// reports whether an event was removed; stale handles (the event
// already popped, or its recycled slot reused by a newer event) are
// detected by the generation stamp and left alone.
func (q *eventQueue) cancel(h eventHandle) bool {
	if h.slot < 0 || int(h.slot) >= len(q.slots) {
		return false
	}
	s := &q.slots[h.slot]
	if s.gen != h.gen || s.pos < 0 {
		return false
	}
	q.removeAt(int(s.pos))
	q.release(h.slot)
	q.cancels++
	return true
}

// removeAt unlinks the heap entry at position i, restoring heap order.
func (q *eventQueue) removeAt(i int) {
	last := len(q.heap) - 1
	if i != last {
		q.heap[i] = q.heap[last]
		q.slots[q.heap[i]].pos = int32(i)
	}
	q.heap = q.heap[:last]
	if i < last {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
}

// release recycles a slot: bump the generation so outstanding handles
// go stale, then put the id on the free list.
func (q *eventQueue) release(id int32) {
	s := &q.slots[id]
	s.pos = -1
	s.gen++
	if s.gen == 0 { // generation wrapped; 0 is reserved for "unused"
		s.gen = 1
	}
	s.ev = event{}
	q.free = append(q.free, id)
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown reports whether the entry moved.
func (q *eventQueue) siftDown(i int) bool {
	moved := false
	for {
		left := 2*i + 1
		if left >= len(q.heap) {
			return moved
		}
		least := left
		if right := left + 1; right < len(q.heap) && q.less(q.heap[right], q.heap[left]) {
			least = right
		}
		if !q.less(q.heap[least], q.heap[i]) {
			return moved
		}
		q.swap(i, least)
		i = least
		moved = true
	}
}

func (q *eventQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.slots[q.heap[i]].pos = int32(i)
	q.slots[q.heap[j]].pos = int32(j)
}
