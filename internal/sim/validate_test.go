package sim

import (
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/trace"
)

// rogueScheduler misbehaves in a configurable way so the engine's
// allocation audit can be exercised.
type rogueScheduler struct {
	mode string
}

func (r rogueScheduler) Name() string                       { return "rogue-" + r.mode }
func (r rogueScheduler) Arrive(*coflow.CoFlow, coflow.Time) {}
func (r rogueScheduler) Depart(*coflow.CoFlow, coflow.Time) {}

func (r rogueScheduler) Schedule(snap *sched.Snapshot) *sched.RateVec {
	alloc := snap.Allocation()
	for _, c := range snap.Active {
		for _, f := range c.Flows {
			switch r.mode {
			case "oversubscribe":
				// Hand every flow full line rate without drawing the
				// fabric ledger down: two flows on one port overflow it.
				alloc.Set(f.Idx, snap.Fabric.PortRate())
			case "negative":
				alloc.Set(f.Idx, -1)
			case "unknown":
				// An index no live flow holds: past the engine's cap.
				alloc.Set(snap.FlowCap+7, 1)
			case "done":
				f.Done = true
				alloc.Set(f.Idx, snap.Fabric.PortRate())
			}
		}
	}
	return alloc
}

func rogueTrace() *trace.Trace {
	return &trace.Trace{Name: "rogue", NumPorts: 3, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 1, Size: coflow.MB},
			{Src: 0, Dst: 2, Size: coflow.MB},
		}},
	}}
}

func TestValidationCatchesRogueSchedulers(t *testing.T) {
	for _, mode := range []string{"oversubscribe", "negative", "unknown", "done"} {
		_, err := Run(rogueTrace(), rogueScheduler{mode: mode}, Config{})
		if err == nil {
			t.Errorf("mode %q: rogue allocation accepted", mode)
			continue
		}
		if !strings.Contains(err.Error(), "sim:") {
			t.Errorf("mode %q: unexpected error %v", mode, err)
		}
	}
}

func TestValidationCanBeSkipped(t *testing.T) {
	// With validation off, the oversubscribing scheduler is not caught
	// (the engine happily moves the bytes — that is the caller's risk).
	res, err := Run(rogueTrace(), rogueScheduler{mode: "oversubscribe"}, Config{SkipValidation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoFlows) != 1 {
		t.Fatalf("coflows = %d", len(res.CoFlows))
	}
}

func TestRealSchedulersPassValidation(t *testing.T) {
	// Every registered policy must survive the audit on a contended
	// workload (validation is on by default in every other test too;
	// this one pins the property explicitly).
	tr := trace.Synthesize(smallSynth(5), "audit")
	for _, name := range sched.Names() {
		s, err := sched.New(name, sched.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(tr.Clone(), s, Config{}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestUtilizationRecorded(t *testing.T) {
	tr := trace.Synthesize(smallSynth(6), "util")
	res := runOn(t, tr, "saath", Config{})
	if res.AvgEgressUtilization <= 0 || res.AvgEgressUtilization > 1 {
		t.Fatalf("utilization = %v", res.AvgEgressUtilization)
	}
}

func TestWorkConservationRaisesUtilization(t *testing.T) {
	// The design claim behind Fig. 4: work conservation fills ports
	// that all-or-none would leave idle.
	tr := trace.Synthesize(smallSynth(7), "wc-util")
	full := runOn(t, tr, "saath", Config{})
	nowc := runOn(t, tr, "saath/nowc", Config{})
	if full.AvgEgressUtilization < nowc.AvgEgressUtilization {
		t.Fatalf("WC utilization %.3f < no-WC %.3f",
			full.AvgEgressUtilization, nowc.AvgEgressUtilization)
	}
}

func TestStragglerCapKeepsOthersFast(t *testing.T) {
	// A wide coflow with one straggler must not blockade the cluster:
	// the coordinator's observed-throughput cap releases the surplus.
	// Compare a short coflow's CCT with and without the straggler
	// coflow sharing its ports.
	straggled := &trace.Trace{Name: "cap", NumPorts: 4, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 2, Size: 100 * coflow.MB},
			{Src: 1, Dst: 3, Size: 100 * coflow.MB},
		}},
		{ID: 2, Arrival: 100 * coflow.Millisecond, Flows: []coflow.FlowSpec{
			{Src: 0, Dst: 3, Size: coflow.MB},
		}},
	}}
	res := runOn(t, straggled, "saath", Config{Dynamics: &Dynamics{
		Seed: 1, StragglerProb: 1.0, Slowdown: 8,
	}})
	var short CoFlowResult
	for _, c := range res.CoFlows {
		if c.ID == 2 {
			short = c
		}
	}
	// The straggling coflow needs ~6.4s; the 1 MB coflow must ride the
	// released surplus and finish in well under a second.
	if short.CCT > coflow.Second {
		t.Fatalf("short coflow stuck behind capped straggler: CCT %v", short.CCT)
	}
}
