// Package sim is the cluster simulator that replays a CoFlow trace
// under a scheduling policy, mirroring the paper's simulator (§6
// Setup): full bisection bandwidth, congestion only at ports, and a
// global schedule recomputed every δ interval (default 8 ms). Flow
// completions inside an interval are credited at their exact time; the
// freed capacity becomes usable at the next recompute, as in the
// pipelined prototype (§5). The engine also injects cluster dynamics
// (stragglers, restarts after failures) and models pipelined data
// availability, exercising §4.3.
//
// # Entry points
//
// New(Config) builds a reusable Engine; Run is the one-shot form.
// Config.Validate rejects malformed configurations (negative δ,
// out-of-range dynamics fractions) at construction. Config.Mode
// selects between two run loops that produce byte-identical results:
//
//   - ModeTick (default): the reference discrete-time loop. While any
//     CoFlow is active it visits every δ boundary, scanning the pending
//     trace for releases, refreshing pipelined availability, then
//     running one scheduling interval (schedule → audit → observe →
//     advance). Idle gaps are skipped in one jump.
//
//   - ModeEvent: a discrete-event loop over a deterministic min-heap of
//     typed events — trace arrivals, exact-time flow completions that
//     release DAG dependents, pipelining availability injections,
//     schedule epochs, probe emissions — ordered by (time, kind
//     priority, key, seq). Idle stretches and the per-boundary
//     pending-trace scans cost nothing, which is the whole win on
//     sparse long-tail traces.
//
// # Equivalence contract
//
// The two modes are bit-for-bit equivalent, not approximately so: same
// Result (CCT bits, makespan, interval count, utilization sums), same
// telemetry stream, same RNG draws. The event engine earns this by
// running schedule epochs at exactly the tick engine's δ boundaries
// through the same beginInterval/observeInterval/advance code path,
// admitting simultaneous arrivals in trace order (the heap key is the
// spec index), and releasing DAG dependents at the same boundary the
// tick engine's pending scan would. Event mode changes how fast a
// simulation runs, never what it computes — pinned by the golden
// equivalence tests and the cross-mode study goldens.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"saath/internal/coflow"
	"saath/internal/fabric"
	"saath/internal/obs"
	"saath/internal/sched"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// Config controls one simulation run. Zero values take paper defaults.
type Config struct {
	// Mode selects the run loop: ModeTick (the default) or ModeEvent.
	// Both modes produce byte-identical results — see the package doc's
	// equivalence contract.
	Mode Mode
	// Delta is the schedule recomputation interval δ (default 8 ms).
	Delta coflow.Time
	// PortRate is per-port line rate (default 1 Gbps).
	PortRate coflow.Rate
	// Horizon aborts runaway simulations (default 30 simulated days).
	Horizon coflow.Time
	// SkipValidation disables the per-interval allocation audit (no
	// port oversubscribed, no rate for done/unavailable flows). The
	// audit is cheap and on by default; benchmarks of raw scheduler
	// speed may turn it off.
	SkipValidation bool
	// Dynamics optionally injects stragglers and flow restarts.
	Dynamics *Dynamics
	// Pipelining optionally delays per-flow data availability.
	Pipelining *Pipelining
	// Probes receive a per-interval telemetry observation, invoked
	// synchronously in order from the run loop. An empty list is free:
	// the no-probe path allocates nothing per interval (enforced by
	// TestObserveIntervalNoProbesZeroAlloc). Probes observe exactly one
	// run — attach fresh instances per simulation.
	Probes []telemetry.Probe
	// Counters, when non-nil, receives engine introspection: epochs,
	// ticks, admissions, event dispatches by kind, heap high-water mark,
	// schedule-call latency. Counting is out-of-band — it never touches
	// simulation state, RNG draws, or Result — and both the nil path and
	// the counting path are zero-alloc in steady state (enforced by the
	// allocguard tests). Attach a fresh instance per run; sharing one
	// across runs sums them.
	Counters *obs.EngineCounters
}

// WithProbe returns a copy of c with p appended to a freshly-copied
// probe list. The copy never aliases the receiver's backing array, so
// configurations derived from one shared base (sweep jobs, facade
// helpers) cannot race on a probe slot or leak a probe into a sibling
// run — the copy-safe replacement for the append-with-full-slice
// idiom. The receiver is unchanged.
func (c Config) WithProbe(p telemetry.Probe) Config {
	probes := make([]telemetry.Probe, len(c.Probes), len(c.Probes)+1)
	copy(probes, c.Probes)
	c.Probes = append(probes, p)
	return c
}

func (c Config) withDefaults() Config {
	if c.Delta <= 0 {
		c.Delta = 8 * coflow.Millisecond
	}
	if c.PortRate <= 0 {
		c.PortRate = fabric.DefaultPortRate
	}
	if c.Horizon <= 0 {
		c.Horizon = 30 * 24 * 3600 * coflow.Second
	}
	return c
}

// Dynamics injects the cluster misbehaviour of §4.3: a fraction of
// flows straggle (their achievable rate is divided by Slowdown), and a
// fraction restart from zero once they reach RestartAt progress,
// modelling task re-execution after a node failure.
type Dynamics struct {
	Seed          int64
	StragglerProb float64 // per-flow probability of straggling
	Slowdown      float64 // rate divisor for stragglers (>1)
	RestartProb   float64 // per-flow probability of one mid-life restart
	RestartAt     float64 // progress fraction triggering the restart (0,1)
}

// Pipelining delays data availability: each flow becomes sendable only
// AvailDelay after its CoFlow arrives, for a random Frac of flows,
// modelling upstream compute stages that have not produced data yet.
type Pipelining struct {
	Seed       int64
	Frac       float64
	AvailDelay coflow.Time
}

// FlowResult records one flow's fate.
type FlowResult struct {
	ID     coflow.FlowID
	Size   coflow.Bytes
	FCT    coflow.Time // DoneAt − CoFlow arrival
	DoneAt coflow.Time
}

// CoFlowResult records one CoFlow's fate.
type CoFlowResult struct {
	ID      coflow.CoFlowID
	Arrival coflow.Time
	DoneAt  coflow.Time
	CCT     coflow.Time
	Width   int
	Bytes   coflow.Bytes
	Flows   []FlowResult
}

// ScheduleStats summarizes the coordinator's wall-clock compute cost,
// the quantity Table 2 reports. Samples are held in a fixed-capacity
// reservoir (Vitter's algorithm R with a deterministic xorshift
// stream), so memory stays bounded on arbitrarily long runs while P90
// remains a faithful estimate.
type ScheduleStats struct {
	Calls   int
	Total   time.Duration
	Max     time.Duration
	samples []time.Duration
	rng     uint64
}

// schedSampleCap bounds the P90 sample reservoir.
const schedSampleCap = 2048

// Record accumulates one Schedule call's wall-clock cost. Exported so
// the coordinator runtime (internal/runtime) measures its Table-2
// scheduling latency with the same bounded reservoir the simulator
// uses.
func (s *ScheduleStats) Record(d time.Duration) { s.record(d) }

// record accumulates one Schedule call's wall-clock cost.
func (s *ScheduleStats) record(d time.Duration) {
	s.Calls++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	if len(s.samples) < schedSampleCap {
		if cap(s.samples) < schedSampleCap {
			//saath:alloc-ok one-time reservoir preallocation
			s.samples = append(make([]time.Duration, 0, schedSampleCap), s.samples...)
		}
		s.samples = append(s.samples, d)
		return
	}
	// Reservoir replacement. Wall-clock timings are measurement noise
	// already, so a deterministic pseudo-random stream (not seeded from
	// the simulation) is fine and keeps the engine rand-free.
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	if j := s.rng % uint64(s.Calls); j < schedSampleCap {
		s.samples[j] = d
	}
}

// Mean returns the average schedule computation time.
func (s ScheduleStats) Mean() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

// P90 returns the 90th-percentile schedule computation time over the
// retained sample reservoir.
func (s ScheduleStats) P90() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), s.samples...)
	slices.Sort(cp)
	idx := int(0.9 * float64(len(cp)-1))
	return cp[idx]
}

// Result is the outcome of one simulation.
type Result struct {
	Scheduler string
	Trace     string
	Ports     int // cluster size the trace ran on
	CoFlows   []CoFlowResult
	Makespan  coflow.Time
	Intervals int // scheduling rounds executed
	Sched     ScheduleStats

	// AvgEgressUtilization is the mean fraction of total sender-side
	// capacity allocated across busy intervals — how well the policy
	// keeps ports fed (work conservation shows up here).
	AvgEgressUtilization float64
}

// CCTByID indexes completion times for speedup computations.
func (r *Result) CCTByID() map[coflow.CoFlowID]coflow.Time {
	out := make(map[coflow.CoFlowID]coflow.Time, len(r.CoFlows))
	for _, c := range r.CoFlows {
		out[c.ID] = c.CCT
	}
	return out
}

// AvgCCT returns the mean CCT in seconds.
func (r *Result) AvgCCT() float64 {
	if len(r.CoFlows) == 0 {
		return 0
	}
	var sum float64
	for _, c := range r.CoFlows {
		sum += c.CCT.Seconds()
	}
	return sum / float64(len(r.CoFlows))
}

// Run replays tr under scheduler s in cfg's engine mode. It is the
// one-shot convenience form of New(cfg) followed by Engine.Run, with
// the same construction-time validation.
func Run(tr *trace.Trace, s sched.Scheduler, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return run(tr, s, cfg)
}

// run builds the per-run engine state and dispatches on Mode. cfg has
// already passed Validate.
func run(tr *trace.Trace, s sched.Scheduler, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:    cfg,
		sched:  s,
		fab:    fabric.New(tr.NumPorts, cfg.PortRate),
		space:  coflow.NewIndexSpace(),
		result: &Result{Scheduler: s.Name(), Trace: tr.Name, Ports: tr.NumPorts},
	}
	if c := cfg.Counters; c != nil {
		c.Mode = cfg.Mode.String()
	}
	e.snap.Fabric = e.fab
	if cfg.Dynamics != nil {
		e.dynRng = rand.New(rand.NewSource(cfg.Dynamics.Seed))
	}
	if cfg.Pipelining != nil {
		e.pipeRng = rand.New(rand.NewSource(cfg.Pipelining.Seed))
	}
	e.load(tr)
	var err error
	if cfg.Mode == ModeEvent {
		err = e.runEvents()
	} else {
		err = e.runTicks()
	}
	if err != nil {
		return nil, err
	}
	return e.result, nil
}

// pendingSpec is a trace entry not yet released to the scheduler.
type pendingSpec struct {
	spec     *coflow.Spec
	deps     map[coflow.CoFlowID]bool // unfinished dependencies
	released bool
	queued   bool // event mode: arrival event already scheduled
}

type engine struct {
	cfg    Config
	sched  sched.Scheduler
	fab    *fabric.Fabric
	result *Result

	// space hands out the dense flow/coflow indices that key the
	// allocation vector and every per-flow scratch array.
	space *coflow.IndexSpace

	pending []*pendingSpec
	active  []*coflow.CoFlow
	doneAt  map[coflow.CoFlowID]coflow.Time

	dynRng  *rand.Rand
	pipeRng *rand.Rand

	utilSum  float64 // accumulated per-interval egress utilization
	admitted int     // CoFlows released to the scheduler so far

	// unavail counts flows currently held back by pipelining;
	// refreshAvailability skips its scan entirely while it is zero.
	unavail int

	// ivScratch is the telemetry observation reused across intervals so
	// the probe path allocates nothing in the engine itself.
	ivScratch telemetry.Interval

	// restartPending marks flows rolled for a one-time mid-life restart.
	restartPending map[coflow.FlowID]bool

	// Per-interval scratch state, reused across ticks so the hot loop
	// allocates nothing: the snapshot (whose Alloc vector the scheduler
	// reuses), the sorted-active scratch, and the dense validation
	// ledgers.
	snap        sched.Snapshot
	snapScratch []*coflow.CoFlow
	valFlows    []*coflow.Flow
	valEgress   []float64
	valIngress  []float64

	// Event-mode state (nil/unused in tick mode): the deterministic
	// event heap, the timestamp of the single pending schedule epoch
	// (-1 when none), the spec indices gated on each CoFlow's
	// completion, and the schedule handed from an epoch event to its
	// same-timestamp probe event.
	evq          *eventQueue
	epochAt      coflow.Time
	dependents   map[coflow.CoFlowID][]int
	pendingAlloc *sched.RateVec

	now coflow.Time
}

func (e *engine) load(tr *trace.Trace) {
	e.doneAt = make(map[coflow.CoFlowID]coflow.Time)
	e.restartPending = make(map[coflow.FlowID]bool)
	for _, spec := range tr.Specs {
		p := &pendingSpec{spec: spec}
		if len(spec.DependsOn) > 0 {
			p.deps = make(map[coflow.CoFlowID]bool, len(spec.DependsOn))
			for _, id := range spec.DependsOn {
				p.deps[id] = true
			}
		}
		e.pending = append(e.pending, p)
	}
}

// releasable reports whether the spec may enter the cluster now.
func (e *engine) releasable(p *pendingSpec, now coflow.Time) bool {
	if p.released || p.spec.Arrival > now {
		return false
	}
	//saath:order-independent all-deps-done conjunction; any visit order yields the same bool
	for id := range p.deps {
		if _, done := e.doneAt[id]; !done {
			return false
		}
	}
	return true
}

// admit releases every spec whose arrival time and dependencies allow.
func (e *engine) admit(now coflow.Time) {
	for _, p := range e.pending {
		if !e.releasable(p, now) {
			continue
		}
		e.admitOne(p, now)
	}
}

// admitOne releases one spec at the δ boundary now: build the CoFlow,
// charge its arrival, roll dynamics and pipelining, hand it to the
// scheduler. Shared verbatim by the tick engine's per-boundary scan
// and the event engine's arrival handler, so both modes replay
// identical RNG streams and scheduler call sequences.
func (e *engine) admitOne(p *pendingSpec, now coflow.Time) *coflow.CoFlow {
	p.released = true
	e.admitted++
	if c := e.cfg.Counters; c != nil {
		c.Admitted++
	}
	c := coflow.New(p.spec)
	c.Arrived = now
	if p.spec.Arrival > 0 && len(p.deps) == 0 {
		// Standalone CoFlows are charged from their trace arrival,
		// even though the coordinator only sees them at the next δ
		// boundary — the CCT clock starts when the first flow
		// arrives (§2.1).
		c.Arrived = p.spec.Arrival
	}
	e.applyDynamicsOnArrival(c)
	e.applyPipelining(c)
	e.space.Assign(c)
	e.active = append(e.active, c)
	e.sched.Arrive(c, now)
	return c
}

func (e *engine) applyDynamicsOnArrival(c *coflow.CoFlow) {
	d := e.cfg.Dynamics
	if d == nil {
		return
	}
	for _, f := range c.Flows {
		if d.StragglerProb > 0 && e.dynRng.Float64() < d.StragglerProb {
			slow := d.Slowdown
			if slow <= 1 {
				slow = 2
			}
			f.Slowdown = slow
		}
		if d.RestartProb > 0 && e.dynRng.Float64() < d.RestartProb {
			e.restartPending[f.ID] = true
		}
	}
}

func (e *engine) applyPipelining(c *coflow.CoFlow) {
	p := e.cfg.Pipelining
	if p == nil {
		return
	}
	changed := false
	for _, f := range c.Flows {
		if e.pipeRng.Float64() < p.Frac {
			f.Available = false
			e.unavail++
			changed = true
		}
	}
	if changed {
		c.Invalidate()
	}
}

// refreshAvailability releases pipelined flows whose delay elapsed.
// The outstanding-unavailable counter lets the common case — every
// flow already released — skip the scan entirely instead of walking
// every flow of every active CoFlow each interval.
func (e *engine) refreshAvailability(now coflow.Time) {
	p := e.cfg.Pipelining
	if p == nil || e.unavail == 0 {
		return
	}
	for _, c := range e.active {
		changed := false
		for _, f := range c.Flows {
			if !f.Available && now >= c.Arrived+p.AvailDelay {
				f.Available = true
				e.unavail--
				changed = true
			}
		}
		if changed {
			c.Invalidate()
		}
	}
}

// nextArrival returns the earliest pending release time, or -1.
func (e *engine) nextArrival() coflow.Time {
	next := coflow.Time(-1)
	for _, p := range e.pending {
		if p.released {
			continue
		}
		t := p.spec.Arrival
		if len(p.deps) > 0 {
			ready := true
			var depDone coflow.Time
			//saath:order-independent max over dep completion times; early not-done exit yields the same bool
			for id := range p.deps {
				dt, done := e.doneAt[id]
				if !done {
					ready = false
					break
				}
				if dt > depDone {
					depDone = dt
				}
			}
			if !ready {
				continue // will be triggered by a completion, not time
			}
			if depDone > t {
				t = depDone
			}
		}
		if next < 0 || t < next {
			next = t
		}
	}
	return next
}

var errHorizon = errors.New("sim: horizon exceeded (scheduler livelock or trace too long)")

// runTicks is the reference discrete-time loop (ModeTick): visit every
// δ boundary while work is active, jumping idle gaps in one step.
func (e *engine) runTicks() error {
	delta := e.cfg.Delta
	for {
		// Jump over idle gaps to the next δ boundary at or after the
		// next release.
		if len(e.active) == 0 {
			na := e.nextArrival()
			if na < 0 {
				if n := e.unreleasedCount(); n > 0 {
					return fmt.Errorf("sim: %d coflows unreachable (dependency cycle?)", n)
				}
				break // drained
			}
			if na > e.now {
				steps := (na - e.now + delta - 1) / delta
				e.now += steps * delta
			}
		}
		if e.now > e.cfg.Horizon {
			return fmt.Errorf("%w at %v", errHorizon, e.now)
		}
		e.admit(e.now)
		e.refreshAvailability(e.now)
		if len(e.active) == 0 {
			continue // the top of the loop re-evaluates releases
		}
		if err := e.tick(delta); err != nil {
			return err
		}
		e.now += delta
	}
	e.result.Makespan = e.now
	if e.result.Intervals > 0 {
		e.result.AvgEgressUtilization = e.utilSum / float64(e.result.Intervals)
	}
	return nil
}

// tick runs one scheduling interval [now, now+δ): compute the
// schedule, audit it, emit telemetry, move bytes. All state it touches
// is engine-owned scratch; a steady-state tick (no arrivals, no
// completions, no probes) performs zero heap allocations — guarded by
// TestEngineTickSteadyStateZeroAlloc.
//
//saath:hotpath
func (e *engine) tick(delta coflow.Time) error {
	if c := e.cfg.Counters; c != nil {
		c.Ticks++
	}
	alloc, err := e.beginInterval()
	if err != nil {
		return err
	}
	e.observeInterval(alloc)
	e.advance(alloc, delta)
	return nil
}

// beginInterval opens the scheduling interval at e.now: snapshot the
// active set, compute the schedule, audit it. The remainder of the
// interval — observeInterval then advance — is split out so the event
// engine can interpose its probe event between scheduling and
// emission while both modes share the exact same code path.
func (e *engine) beginInterval() (*sched.RateVec, error) {
	e.fab.Reset()
	e.snap.Now = e.now
	e.snap.Active = e.activeSorted()
	e.snap.FlowCap = e.space.FlowCap()
	e.snap.CoFlowCap = e.space.CoFlowCap()
	start := time.Now() //saath:wallclock schedule-latency measurement, out-of-band counters only
	alloc := e.sched.Schedule(&e.snap)
	elapsed := time.Since(start) //saath:wallclock
	e.result.Sched.record(elapsed)
	e.result.Intervals++
	if c := e.cfg.Counters; c != nil {
		c.Epochs++
		c.Schedule.Observe(elapsed)
	}

	if !e.cfg.SkipValidation {
		if err := e.validateAllocation(alloc); err != nil {
			return nil, err
		}
	}
	return alloc, nil
}

// observeInterval is the engine's single per-interval emission path:
// it accumulates the egress-utilization mean that Result reports and,
// when probes are attached, hands them the full interval observation.
// Rates are summed in deterministic flow order — float addition is not
// associative, and ranging over the allocation map would let iteration
// order perturb the low bits of the reported utilization across runs.
// With no probes attached this path allocates nothing.
func (e *engine) observeInterval(alloc *sched.RateVec) {
	var total float64
	for _, c := range e.active {
		for _, f := range c.Flows {
			if r, ok := alloc.Get(f.Idx); ok {
				total += float64(r)
			}
		}
	}
	capTotal := float64(e.cfg.PortRate) * float64(e.fab.NumPorts())
	if capTotal > 0 {
		e.utilSum += total / capTotal
	}
	if len(e.cfg.Probes) == 0 {
		return
	}
	iv := &e.ivScratch
	*iv = telemetry.Interval{
		Index:         e.result.Intervals - 1,
		Now:           e.now,
		Delta:         e.cfg.Delta,
		NumPorts:      e.fab.NumPorts(),
		PortRate:      e.cfg.PortRate,
		Active:        e.snapScratch, // this interval's sorted snapshot
		Alloc:         alloc,
		AllocatedRate: total,
		Admitted:      e.admitted,
		Completed:     len(e.result.CoFlows),
	}
	for _, p := range e.cfg.Probes {
		p.Observe(iv)
	}
}

// validateAllocation audits one interval's schedule: every rate maps
// to a live sendable flow, rates are non-negative, and no port's
// ingress or egress is oversubscribed beyond float tolerance. This is
// the engine's guard against scheduler bugs — policies that bypass the
// fabric ledger are caught here. The ledgers are dense arrays keyed by
// flow index / port, reused across intervals.
func (e *engine) validateAllocation(alloc *sched.RateVec) error {
	np := e.fab.NumPorts()
	if len(e.valEgress) < np {
		//saath:alloc-ok amortized ledger growth, skipped at steady state
		e.valEgress = make([]float64, np)
		e.valIngress = make([]float64, np) //saath:alloc-ok
	}
	egress, ingress := e.valEgress[:np], e.valIngress[:np]
	for i := range egress {
		egress[i], ingress[i] = 0, 0
	}
	if len(e.valFlows) < e.snap.FlowCap {
		e.valFlows = make([]*coflow.Flow, e.snap.FlowCap) //saath:alloc-ok amortized ledger growth
	}
	flows := e.valFlows
	for _, c := range e.active {
		for _, f := range c.Flows {
			if f.Idx >= 0 && f.Idx < len(flows) {
				flows[f.Idx] = f
			}
		}
	}
	err := e.validateFilled(alloc, flows, egress, ingress)
	for _, c := range e.active {
		for _, f := range c.Flows {
			if f.Idx >= 0 && f.Idx < len(flows) {
				flows[f.Idx] = nil
			}
		}
	}
	return err
}

func (e *engine) validateFilled(alloc *sched.RateVec, flows []*coflow.Flow, egress, ingress []float64) error {
	var err error
	alloc.Range(func(idx int, r coflow.Rate) bool {
		if idx >= len(flows) || flows[idx] == nil {
			err = fmt.Errorf("sim: schedule names unknown flow index %d", idx)
			return false
		}
		f := flows[idx]
		if r < 0 {
			err = fmt.Errorf("sim: negative rate %v for flow %v", r, f.ID)
			return false
		}
		if r > 0 && !f.Sendable() {
			err = fmt.Errorf("sim: rate %v for non-sendable flow %v", r, f.ID)
			return false
		}
		egress[f.Src] += float64(r)
		ingress[f.Dst] += float64(r)
		return true
	})
	if err != nil {
		return err
	}
	limit := float64(e.cfg.PortRate) * 1.0001
	for p := range egress {
		if egress[p] > limit {
			return fmt.Errorf("sim: egress port %d oversubscribed: %.0f > %.0f B/s", p, egress[p], float64(e.cfg.PortRate))
		}
		if ingress[p] > limit {
			return fmt.Errorf("sim: ingress port %d oversubscribed: %.0f > %.0f B/s", p, ingress[p], float64(e.cfg.PortRate))
		}
	}
	return nil
}

func (e *engine) unreleasedCount() int {
	n := 0
	for _, p := range e.pending {
		if !p.released {
			n++
		}
	}
	return n
}

// activeSorted snapshots the active set in arrival order for the
// scheduler, reusing one scratch slice across intervals.
func (e *engine) activeSorted() []*coflow.CoFlow {
	e.snapScratch = append(e.snapScratch[:0], e.active...)
	sched.ByArrival(e.snapScratch)
	return e.snapScratch
}

// advance moves bytes for one interval and retires finished coflows.
// Survivors are compacted into the active slice in place (writes trail
// reads), so steady-state ticks reuse its backing array. CoFlows whose
// sendable set changed (a flow completed) have their derived-state
// caches invalidated.
func (e *engine) advance(alloc *sched.RateVec, dt coflow.Time) {
	still := e.active[:0]
	for _, c := range e.active {
		completed := false
		for _, f := range c.Flows {
			if !f.Sendable() {
				continue
			}
			rate, ok := alloc.Get(f.Idx)
			if !ok || rate <= 0 {
				continue
			}
			eff := f.EffectiveRate(rate, e.cfg.PortRate)
			moved := eff.Transfer(dt)
			rem := f.Remaining()
			if moved >= rem {
				f.Sent = f.Size
				f.Done = true
				f.DoneAt = e.now + eff.TimeToSend(rem)
				if f.DoneAt > e.now+dt {
					f.DoneAt = e.now + dt
				}
				completed = true
			} else {
				f.Sent += moved
				e.maybeRestart(f)
			}
		}
		if completed {
			c.Invalidate()
		}
		if c.RefreshDone() {
			e.retire(c)
		} else {
			still = append(still, c)
		}
	}
	e.active = still
}

// maybeRestart applies a rolled one-time failure: the flow loses all
// progress once it crosses the RestartAt fraction.
func (e *engine) maybeRestart(f *coflow.Flow) {
	d := e.cfg.Dynamics
	if d == nil || !e.restartPending[f.ID] {
		return
	}
	at := d.RestartAt
	if at <= 0 || at >= 1 {
		at = 0.5
	}
	if float64(f.Sent) >= at*float64(f.Size) {
		f.Sent = 0
		f.Restarted = true
		delete(e.restartPending, f.ID)
	}
}

func (e *engine) retire(c *coflow.CoFlow) {
	e.doneAt[c.ID()] = c.DoneAt
	if cnt := e.cfg.Counters; cnt != nil {
		cnt.Retired++
	}
	// Event mode: coflows gating DAG dependents get an exact-time
	// completion event so releases never need the tick engine's
	// per-boundary pending scan. DoneAt lies in [now, now+δ], so the
	// event pops once this interval finishes, before the boundary that
	// should admit the dependents (releaseDependents clamps to the
	// post-interval clock).
	if e.evq != nil && len(e.dependents[c.ID()]) > 0 {
		e.pushEvent(event{time: c.DoneAt, kind: eventFlowDone, co: c})
	}
	e.sched.Depart(c, e.now)
	e.space.Release(c) // after Depart, which still reads the indices
	res := CoFlowResult{
		ID:      c.ID(),
		Arrival: c.Arrived,
		DoneAt:  c.DoneAt,
		CCT:     c.CCT(),
		Width:   c.Width(),
		Bytes:   c.Spec.TotalSize(),
	}
	for _, f := range c.Flows {
		res.Flows = append(res.Flows, FlowResult{
			ID:     f.ID,
			Size:   f.Size,
			FCT:    f.DoneAt - c.Arrived,
			DoneAt: f.DoneAt,
		})
	}
	e.result.CoFlows = append(e.result.CoFlows, res)
}
