package sim

import (
	"fmt"

	"saath/internal/coflow"
	"saath/internal/sched"
)

// The discrete-event run loop (ModeEvent). It executes exactly the
// same simulation as runTicks — schedule epochs at the same δ
// boundaries, admissions at the same boundaries in the same order,
// the same beginInterval/observeInterval/advance interval body — but
// drives everything from the deterministic event heap, so idle
// stretches between coflows and the tick engine's O(pending) scans
// per boundary cost nothing.
//
// Within-timestamp ordering (the eventKind priorities) mirrors one
// tick-loop iteration: exact-time completions release dependents
// first, then the boundary's admissions in trace order, then
// pipelining availability injections, then the schedule epoch, then
// telemetry emission.

// runEvents drains the event heap until the simulation completes.
func (e *engine) runEvents() error {
	delta := e.cfg.Delta
	e.evq = &eventQueue{}
	e.epochAt = -1
	e.loadEvents()
	for {
		ok, err := e.step(delta)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if n := e.unreleasedCount(); n > 0 {
		return fmt.Errorf("sim: %d coflows unreachable (dependency cycle?)", n)
	}
	if c := e.cfg.Counters; c != nil {
		c.HeapCancels += e.evq.cancels
	}
	e.result.Makespan = e.now
	if e.result.Intervals > 0 {
		e.result.AvgEgressUtilization = e.utilSum / float64(e.result.Intervals)
	}
	return nil
}

// pushEvent schedules ev through the introspection seam: every heap
// insertion is counted and the depth high-water mark maintained when
// counters are attached. All engine push sites go through here.
func (e *engine) pushEvent(ev event) {
	e.evq.push(ev)
	if c := e.cfg.Counters; c != nil {
		c.HeapPushes++
		if n := int64(e.evq.Len()); n > c.HeapMax {
			c.HeapMax = n
		}
	}
}

// step pops and dispatches one event; ok is false once the heap has
// drained. A steady-state step — the recurring epoch of a busy cluster
// with no arrivals, completions, or probes — allocates nothing
// (guarded by TestEngineEventSteadyStateZeroAlloc).
//
//saath:hotpath
func (e *engine) step(delta coflow.Time) (bool, error) {
	ev, ok := e.evq.pop()
	if !ok {
		return false, nil
	}
	if c := e.cfg.Counters; c != nil {
		c.EventsDispatched++
		c.EventsByKind[ev.kind]++
	}
	// The clock only moves forward: completion events carry exact
	// mid-interval times that the post-interval clock has already
	// passed.
	if ev.time > e.now {
		e.now = ev.time
	}
	switch ev.kind {
	case eventFlowDone:
		e.releaseDependents(ev.co)
	case eventArrival:
		// Horizon is checked where the tick loop checks it: at δ
		// boundaries the simulation is still trying to reach.
		if ev.time > e.cfg.Horizon {
			return false, fmt.Errorf("%w at %v", errHorizon, ev.time)
		}
		e.admitSpec(e.pending[ev.spec], ev.time)
	case eventAvail:
		e.injectAvail(ev.co)
	case eventEpoch:
		if ev.time > e.cfg.Horizon {
			return false, fmt.Errorf("%w at %v", errHorizon, ev.time)
		}
		e.epochAt = -1
		alloc, err := e.beginInterval()
		if err != nil {
			return false, err
		}
		if len(e.cfg.Probes) > 0 {
			// Probe emission is its own event, consuming the interval
			// the epoch just scheduled. Nothing can pop between the
			// two: they share a timestamp and only eventProbe sorts
			// after eventEpoch.
			e.pendingAlloc = alloc
			e.pushEvent(event{time: ev.time, kind: eventProbe})
		} else {
			e.observeInterval(alloc)
			e.finishInterval(alloc, delta)
		}
	case eventProbe:
		alloc := e.pendingAlloc
		e.pendingAlloc = nil
		e.observeInterval(alloc)
		e.finishInterval(alloc, delta)
	}
	return true, nil
}

// loadEvents seeds the heap: every dependency-free spec gets its
// arrival event up front, keyed by spec index so simultaneous
// admissions replay in trace order; dependency-gated specs are indexed
// by the coflows they wait on and enter the heap from releaseDependents
// when their last dependency completes.
func (e *engine) loadEvents() {
	for i, p := range e.pending {
		if len(p.deps) == 0 {
			p.queued = true
			e.pushEvent(event{
				time: e.ceilDelta(p.spec.Arrival),
				kind: eventArrival,
				key:  int64(i),
				spec: i,
			})
			continue
		}
		if e.dependents == nil {
			e.dependents = make(map[coflow.CoFlowID][]int)
		}
		for id := range p.deps {
			e.dependents[id] = append(e.dependents[id], i)
		}
	}
}

// ceilDelta rounds t up to the next δ boundary — the first boundary at
// which the tick engine could act on something that happens at t.
func (e *engine) ceilDelta(t coflow.Time) coflow.Time {
	if t <= 0 {
		return 0
	}
	delta := e.cfg.Delta
	return ((t + delta - 1) / delta) * delta
}

// pushEpoch schedules the single pending schedule epoch.
func (e *engine) pushEpoch(t coflow.Time) {
	e.pushEvent(event{time: t, kind: eventEpoch})
	e.epochAt = t
}

// admitSpec handles one arrival event at the δ boundary now: admit the
// coflow through the shared path, schedule its availability injection
// if pipelining withheld flows, and make sure a schedule epoch is
// pending for this boundary.
func (e *engine) admitSpec(p *pendingSpec, now coflow.Time) {
	before := e.unavail
	c := e.admitOne(p, now)
	if e.unavail > before {
		// The tick engine releases withheld flows at the first boundary
		// it visits once c.Arrived+AvailDelay has passed — never before
		// the admission boundary itself.
		at := e.ceilDelta(c.Arrived + e.cfg.Pipelining.AvailDelay)
		if at < now {
			at = now
		}
		e.pushEvent(event{time: at, kind: eventAvail, co: c})
	}
	if e.epochAt < 0 {
		e.pushEpoch(now)
	}
}

// releaseDependents fires when a gating coflow completes: any spec
// whose dependencies are now all retired gets its arrival event at the
// boundary where the tick engine's pending scan would admit it.
func (e *engine) releaseDependents(c *coflow.CoFlow) {
	for _, idx := range e.dependents[c.ID()] {
		p := e.pending[idx]
		if p.queued || p.released {
			continue
		}
		t := p.spec.Arrival
		ready := true
		//saath:order-independent max over dep completion times; early not-done exit yields the same bool
		for id := range p.deps {
			dt, done := e.doneAt[id]
			if !done {
				ready = false
				break
			}
			if dt > t {
				t = dt
			}
		}
		if !ready {
			continue
		}
		at := e.ceilDelta(t)
		if at < e.now {
			// The interval that retired the last dependency has already
			// run; the earliest boundary left is the post-interval clock.
			at = e.now
		}
		p.queued = true
		e.pushEvent(event{time: at, kind: eventArrival, key: int64(idx), spec: idx})
	}
}

// injectAvail releases a coflow's pipelining-withheld flows. The event
// fires at the boundary refreshAvailability would have caught them, so
// no time check is needed; the flips are idempotent and commutative.
func (e *engine) injectAvail(c *coflow.CoFlow) {
	changed := false
	for _, f := range c.Flows {
		if !f.Available {
			f.Available = true
			e.unavail--
			changed = true
		}
	}
	if changed {
		c.Invalidate()
	}
}

// finishInterval closes the interval the current epoch opened: move
// bytes, retire completions, advance the clock past the boundary, and
// keep exactly one epoch pending while work remains. Steady state —
// no arrivals, completions, or probes — allocates nothing (guarded by
// TestEngineEventSteadyStateZeroAlloc).
func (e *engine) finishInterval(alloc *sched.RateVec, delta coflow.Time) {
	e.advance(alloc, delta)
	e.now += delta
	if len(e.active) > 0 {
		e.pushEpoch(e.now)
	}
}
