package sim

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/trace"

	_ "saath/internal/core"         // register saath variants
	_ "saath/internal/sched/aalo"   // register aalo
	_ "saath/internal/sched/baraat" // register baraat
	_ "saath/internal/sched/clair"  // register clairvoyant policies
	_ "saath/internal/sched/uctcp"  // register uc-tcp
	_ "saath/internal/sched/varys"  // register varys
)

func runOn(t *testing.T, tr *trace.Trace, scheduler string, cfg Config) *Result {
	t.Helper()
	s, err := sched.New(scheduler, sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr.Clone(), s, cfg)
	if err != nil {
		t.Fatalf("%s on %s: %v", scheduler, tr.Name, err)
	}
	return res
}

// checkConservation asserts the invariants every run must satisfy.
func checkConservation(t *testing.T, tr *trace.Trace, res *Result) {
	t.Helper()
	if len(res.CoFlows) != len(tr.Specs) {
		t.Fatalf("%s: %d of %d coflows completed", res.Scheduler, len(res.CoFlows), len(tr.Specs))
	}
	byID := make(map[coflow.CoFlowID]*coflow.Spec)
	for _, s := range tr.Specs {
		byID[s.ID] = s
	}
	for _, c := range res.CoFlows {
		spec := byID[c.ID]
		if spec == nil {
			t.Fatalf("unknown coflow %d in results", c.ID)
		}
		if c.CCT <= 0 {
			t.Errorf("coflow %d: CCT %v", c.ID, c.CCT)
		}
		if c.DoneAt < c.Arrival {
			t.Errorf("coflow %d: done %v before arrival %v", c.ID, c.DoneAt, c.Arrival)
		}
		if c.Bytes != spec.TotalSize() {
			t.Errorf("coflow %d: bytes %d != spec %d", c.ID, c.Bytes, spec.TotalSize())
		}
		var lastFlow coflow.Time
		for _, f := range c.Flows {
			if f.DoneAt > lastFlow {
				lastFlow = f.DoneAt
			}
		}
		if lastFlow != c.DoneAt {
			t.Errorf("coflow %d: CCT not set by last flow (%v vs %v)", c.ID, lastFlow, c.DoneAt)
		}
	}
}

func TestSingleFlowExactCCT(t *testing.T) {
	// 1 MB at 1 Gbps is ~8.4 ms (1 MiB / 125e6 B/s); the engine credits
	// the exact in-interval completion.
	tr := &trace.Trace{Name: "one", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
	}}
	res := runOn(t, tr, "saath", Config{})
	checkConservation(t, tr, res)
	want := coflow.GbpsRate(1).TimeToSend(coflow.MB)
	got := res.CoFlows[0].CCT
	if got < want || got > want+coflow.Millisecond {
		t.Fatalf("CCT = %v, want ≈%v", got, want)
	}
}

func TestAllSchedulersCompleteMicroTraces(t *testing.T) {
	traces := []*trace.Trace{trace.Fig1Trace(), trace.Fig4Trace(), trace.Fig8Trace(), trace.Fig17Trace()}
	scheds := []string{"saath", "saath/an+fifo", "saath/an+pf+fifo", "saath/nowc",
		"aalo", "baraat", "baraat/fifo", "varys", "scf", "srtf", "sjf-duration", "lwtf", "uc-tcp"}
	for _, tr := range traces {
		for _, sn := range scheds {
			res := runOn(t, tr, sn, Config{})
			checkConservation(t, tr, res)
		}
	}
}

func TestFig1SaathBeatsAalo(t *testing.T) {
	tr := trace.Fig1Trace()
	saath := runOn(t, tr, "saath", Config{})
	aalo := runOn(t, tr, "aalo", Config{})
	if saath.AvgCCT() >= aalo.AvgCCT() {
		t.Fatalf("fig1: saath %.4fs !< aalo %.4fs", saath.AvgCCT(), aalo.AvgCCT())
	}
}

func TestFig4WorkConservationHelps(t *testing.T) {
	tr := trace.Fig4Trace()
	full := runOn(t, tr, "saath", Config{})
	nowc := runOn(t, tr, "saath/nowc", Config{})
	if full.AvgCCT() > nowc.AvgCCT() {
		t.Fatalf("fig4: WC hurt: %.4fs vs %.4fs", full.AvgCCT(), nowc.AvgCCT())
	}
	// The paper's example: WC turns avg 2t into 1.67t — strictly better.
	if full.AvgCCT() >= nowc.AvgCCT() {
		t.Fatalf("fig4: WC did not help: %.4fs vs %.4fs", full.AvgCCT(), nowc.AvgCCT())
	}
}

func TestFig17ContentionBeatsDurationSJF(t *testing.T) {
	tr := trace.Fig17Trace()
	sjf := runOn(t, tr, "sjf-duration", Config{})
	lwtf := runOn(t, tr, "lwtf", Config{})
	if lwtf.AvgCCT() >= sjf.AvgCCT() {
		t.Fatalf("fig17: lwtf %.4fs !< sjf %.4fs", lwtf.AvgCCT(), sjf.AvgCCT())
	}
}

func TestFig8LCoFPreemptsHighContentionCoFlow(t *testing.T) {
	// Fig. 8 explores LCoF's limitation with a long, low-contention
	// CoFlow. Under the text's contention definition (k = CoFlows
	// blocked across all ports) C2 blocks both C1 and C3 (k=2) while
	// each short CoFlow blocks only C2 (k=1), so once C1/C3 arrive
	// they preempt C2: short CCTs ≈ 1t, C2 ≈ 3.5t, and the average
	// beats the paper's illustrated LCoF outcome of 2.83t.
	tr := trace.Fig8Trace()
	res := runOn(t, tr, "saath", Config{})
	var c1, c2, c3 CoFlowResult
	for _, c := range res.CoFlows {
		switch c.ID {
		case 1:
			c1 = c
		case 2:
			c2 = c
		case 3:
			c3 = c
		}
	}
	// One micro-unit flow is 12.5 MB, which crosses the 10 MB per-flow
	// threshold shortly before completion, so C1/C3 demote for a few
	// intervals near the end; allow that slack (observed ≈1.47t).
	unit := trace.MicroUnit.Seconds()
	if c1.CCT.Seconds() > 1.6*unit || c3.CCT.Seconds() > 1.6*unit {
		t.Fatalf("fig8: short coflows not preempting: C1=%v C3=%v", c1.CCT, c3.CCT)
	}
	if c2.CCT.Seconds() < 3*unit || c2.CCT.Seconds() > 4*unit {
		t.Fatalf("fig8: C2 CCT %v, want ≈3.5t (pushed back)", c2.CCT)
	}
	if avg := res.AvgCCT(); avg > 2.83*unit {
		t.Fatalf("fig8: avg CCT %.3fs worse than paper's LCoF 2.83t", avg)
	}
}

func TestDeterminism(t *testing.T) {
	tr := trace.Synthesize(smallSynth(1), "det")
	a := runOn(t, tr, "saath", Config{})
	b := runOn(t, tr, "saath", Config{})
	if len(a.CoFlows) != len(b.CoFlows) {
		t.Fatal("different completion counts")
	}
	am, bm := a.CCTByID(), b.CCTByID()
	for id, cct := range am {
		if bm[id] != cct {
			t.Fatalf("coflow %d: %v vs %v", id, cct, bm[id])
		}
	}
}

func smallSynth(seed int64) trace.SynthConfig {
	return trace.SynthConfig{
		Seed: seed, NumPorts: 20, NumCoFlows: 30,
		MeanInterArrival: 30 * coflow.Millisecond,
		SingleFlowFrac:   0.25, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
		SmallFracNarrow: 0.8, SmallFracWide: 0.4,
		MinSmall: coflow.MB, MaxSmall: 50 * coflow.MB,
		MinLarge: 50 * coflow.MB, MaxLarge: 500 * coflow.MB,
	}
}

func TestSyntheticWorkloadAllSchedulers(t *testing.T) {
	tr := trace.Synthesize(smallSynth(2), "small")
	for _, sn := range []string{"saath", "aalo", "varys", "uc-tcp", "lwtf"} {
		res := runOn(t, tr, sn, Config{})
		checkConservation(t, tr, res)
	}
}

func TestDAGDependenciesGateRelease(t *testing.T) {
	u := coflow.Bytes(trace.MicroUnitBytes)
	tr := &trace.Trace{Name: "dag", NumPorts: 4, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: u}}},
		{ID: 2, Arrival: 0, Stage: 1, DependsOn: []coflow.CoFlowID{1},
			Flows: []coflow.FlowSpec{{Src: 1, Dst: 2, Size: u}}},
	}}
	res := runOn(t, tr, "saath", Config{})
	checkConservation(t, tr, res)
	var c1, c2 CoFlowResult
	for _, c := range res.CoFlows {
		if c.ID == 1 {
			c1 = c
		} else {
			c2 = c
		}
	}
	if c2.Arrival < c1.DoneAt {
		t.Fatalf("stage 2 released at %v before stage 1 done at %v", c2.Arrival, c1.DoneAt)
	}
}

func TestDAGCycleDetected(t *testing.T) {
	tr := &trace.Trace{Name: "cycle", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, DependsOn: []coflow.CoFlowID{2},
			Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 1}}},
		{ID: 2, Arrival: 0, DependsOn: []coflow.CoFlowID{1},
			Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 1}}},
	}}
	s, _ := sched.New("saath", sched.DefaultParams())
	if _, err := Run(tr, s, Config{}); err == nil {
		t.Fatal("dependency cycle not detected")
	}
}

func TestStragglerSlowdownExtendsCCT(t *testing.T) {
	tr := &trace.Trace{Name: "slow", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 10 * coflow.MB}}},
	}}
	base := runOn(t, tr, "saath", Config{})
	slowed := runOn(t, tr, "saath", Config{Dynamics: &Dynamics{
		Seed: 1, StragglerProb: 1.0, Slowdown: 4,
	}})
	if slowed.CoFlows[0].CCT < 3*base.CoFlows[0].CCT {
		t.Fatalf("straggler CCT %v not ~4x base %v", slowed.CoFlows[0].CCT, base.CoFlows[0].CCT)
	}
}

func TestRestartLosesProgress(t *testing.T) {
	tr := &trace.Trace{Name: "restart", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 50 * coflow.MB}}},
	}}
	base := runOn(t, tr, "saath", Config{})
	failed := runOn(t, tr, "saath", Config{Dynamics: &Dynamics{
		Seed: 1, RestartProb: 1.0, RestartAt: 0.5,
	}})
	// Losing half the progress costs roughly 50% more time.
	if failed.CoFlows[0].CCT <= base.CoFlows[0].CCT {
		t.Fatalf("restart CCT %v not worse than base %v", failed.CoFlows[0].CCT, base.CoFlows[0].CCT)
	}
}

func TestPipeliningDelaysCompletion(t *testing.T) {
	tr := &trace.Trace{Name: "pipe", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
	}}
	base := runOn(t, tr, "saath", Config{})
	delayed := runOn(t, tr, "saath", Config{Pipelining: &Pipelining{
		Seed: 1, Frac: 1.0, AvailDelay: 200 * coflow.Millisecond,
	}})
	if delayed.CoFlows[0].CCT < base.CoFlows[0].CCT+150*coflow.Millisecond {
		t.Fatalf("pipelined CCT %v vs base %v: delay not applied", delayed.CoFlows[0].CCT, base.CoFlows[0].CCT)
	}
	checkConservation(t, tr, delayed)
}

// nullScheduler never allocates anything; the engine must hit the
// horizon rather than loop forever.
type nullScheduler struct{}

func (nullScheduler) Name() string                            { return "null" }
func (nullScheduler) Arrive(*coflow.CoFlow, coflow.Time)      {}
func (nullScheduler) Depart(*coflow.CoFlow, coflow.Time)      {}
func (nullScheduler) Schedule(*sched.Snapshot) *sched.RateVec { return nil }

func TestHorizonAbortsLivelock(t *testing.T) {
	tr := &trace.Trace{Name: "stuck", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
	}}
	_, err := Run(tr, nullScheduler{}, Config{Horizon: coflow.Second})
	if err == nil {
		t.Fatal("livelock not detected")
	}
}

func TestInvalidTraceRejected(t *testing.T) {
	tr := &trace.Trace{Name: "bad", NumPorts: 1, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 5, Size: 1}}},
	}}
	s, _ := sched.New("saath", sched.DefaultParams())
	if _, err := Run(tr, s, Config{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestScheduleStats(t *testing.T) {
	tr := trace.Synthesize(smallSynth(3), "stats")
	res := runOn(t, tr, "saath", Config{})
	if res.Sched.Calls == 0 || res.Intervals == 0 {
		t.Fatal("no scheduling rounds recorded")
	}
	if res.Sched.Mean() <= 0 || res.Sched.P90() < res.Sched.Mean()/10 {
		t.Fatalf("stats look wrong: mean=%v p90=%v", res.Sched.Mean(), res.Sched.P90())
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan missing")
	}
}

func TestIdleGapSkipping(t *testing.T) {
	// Two coflows separated by a long idle gap: runtime should not
	// degrade and both must complete at sane times.
	tr := &trace.Trace{Name: "gap", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
		{ID: 2, Arrival: 3600 * coflow.Second, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
	}}
	res := runOn(t, tr, "saath", Config{})
	checkConservation(t, tr, res)
	// The engine steps by δ; far fewer intervals than an hour's worth.
	if res.Intervals > 1000 {
		t.Fatalf("idle gap not skipped: %d intervals", res.Intervals)
	}
}
