package sim

import (
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/trace"
)

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeTick, ModeEvent} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("warp"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	if s := Mode(7).String(); !strings.Contains(s, "7") {
		t.Errorf("unknown mode String() = %q", s)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; empty means valid
	}{
		{"zero-is-default", Config{}, ""},
		{"explicit-sane", Config{
			Delta: 4 * coflow.Millisecond, PortRate: coflow.GbpsRate(10),
			Horizon: coflow.Second, Mode: ModeEvent,
			Dynamics:   &Dynamics{StragglerProb: 0.5, Slowdown: 2, RestartProb: 0.1, RestartAt: 0.5},
			Pipelining: &Pipelining{Frac: 1, AvailDelay: coflow.Millisecond},
		}, ""},
		{"negative-delta", Config{Delta: -1}, "Delta"},
		{"negative-port-rate", Config{PortRate: -5}, "PortRate"},
		{"negative-horizon", Config{Horizon: -coflow.Second}, "Horizon"},
		{"bad-mode", Config{Mode: Mode(9)}, "mode"},
		{"straggler-prob", Config{Dynamics: &Dynamics{StragglerProb: 1.5}}, "StragglerProb"},
		{"restart-prob", Config{Dynamics: &Dynamics{RestartProb: -0.1}}, "RestartProb"},
		{"negative-slowdown", Config{Dynamics: &Dynamics{Slowdown: -2}}, "Slowdown"},
		{"restart-at-high", Config{Dynamics: &Dynamics{RestartAt: 1}}, "RestartAt"},
		{"restart-at-negative", Config{Dynamics: &Dynamics{RestartAt: -0.5}}, "RestartAt"},
		{"pipelining-frac", Config{Pipelining: &Pipelining{Frac: 2}}, "Frac"},
		{"pipelining-delay", Config{Pipelining: &Pipelining{AvailDelay: -1}}, "AvailDelay"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestNewRejectsBadConfig pins validation to construction time for
// both entry points: New and the one-shot Run.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Delta: -1}); err == nil {
		t.Error("New accepted a negative Delta")
	}
	s, err := sched.New("saath", sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Name: "t", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 1}}},
	}}
	if _, err := Run(tr, s, Config{Dynamics: &Dynamics{StragglerProb: 2}}); err == nil {
		t.Error("Run accepted an out-of-range StragglerProb")
	}
}

// TestEngineReusable runs one Engine twice and requires identical
// results: engines hold no per-run state.
func TestEngineReusable(t *testing.T) {
	eng, err := New(Config{Mode: ModeEvent})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Mode() != ModeEvent || eng.Config().Mode != ModeEvent {
		t.Fatalf("engine mode = %v, config mode = %v", eng.Mode(), eng.Config().Mode)
	}
	tr := trace.Synthesize(smallSynth(4), "reuse")
	var results [2]*Result
	for i := range results {
		s, err := sched.New("saath", sched.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(tr.Clone(), s)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	sameResult(t, "reuse", results[0], results[1])
}
