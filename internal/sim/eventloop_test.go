package sim

import (
	"strings"
	"testing"

	"saath/internal/coflow"
	"saath/internal/sched"
	"saath/internal/trace"
)

// eventCfg flips any Config to the event engine.
func eventCfg(cfg Config) Config {
	cfg.Mode = ModeEvent
	return cfg
}

// sameResult compares two runs field-for-field at full precision.
func sameResult(t *testing.T, label string, tick, event *Result) {
	t.Helper()
	if tick.Makespan != event.Makespan {
		t.Errorf("%s: makespan tick %v, event %v", label, tick.Makespan, event.Makespan)
	}
	if tick.Intervals != event.Intervals {
		t.Errorf("%s: intervals tick %d, event %d", label, tick.Intervals, event.Intervals)
	}
	if tick.AvgEgressUtilization != event.AvgEgressUtilization {
		t.Errorf("%s: utilization tick %v, event %v", label, tick.AvgEgressUtilization, event.AvgEgressUtilization)
	}
	if len(tick.CoFlows) != len(event.CoFlows) {
		t.Fatalf("%s: coflows tick %d, event %d", label, len(tick.CoFlows), len(event.CoFlows))
	}
	for i := range tick.CoFlows {
		tc, ec := tick.CoFlows[i], event.CoFlows[i]
		if tc.ID != ec.ID || tc.Arrival != ec.Arrival || tc.DoneAt != ec.DoneAt ||
			tc.CCT != ec.CCT || tc.Width != ec.Width || tc.Bytes != ec.Bytes {
			t.Errorf("%s: coflow[%d] tick %+v, event %+v", label, i, tc, ec)
		}
		for j := range tc.Flows {
			if tc.Flows[j] != ec.Flows[j] {
				t.Errorf("%s: coflow %d flow[%d] tick %+v, event %+v",
					label, tc.ID, j, tc.Flows[j], ec.Flows[j])
			}
		}
	}
}

// TestEventModeScenarioParity replays every engine edge case — DAG
// gating, stragglers, restarts, pipelining, combined dynamics, idle
// gaps, zero-size flows — in both modes and requires identical results
// down to each flow's exact completion time.
func TestEventModeScenarioParity(t *testing.T) {
	u := coflow.Bytes(trace.MicroUnitBytes)
	scenarios := []struct {
		name string
		tr   *trace.Trace
		cfg  Config
	}{
		{"dag-chain", &trace.Trace{Name: "dag", NumPorts: 4, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: u}}},
			{ID: 2, Arrival: 0, Stage: 1, DependsOn: []coflow.CoFlowID{1},
				Flows: []coflow.FlowSpec{{Src: 1, Dst: 2, Size: u}}},
			{ID: 3, Arrival: 0, Stage: 2, DependsOn: []coflow.CoFlowID{2},
				Flows: []coflow.FlowSpec{{Src: 2, Dst: 3, Size: u}}},
		}}, Config{}},
		{"dag-join-late-arrival", &trace.Trace{Name: "join", NumPorts: 4, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 4 * coflow.MB}}},
			{ID: 2, Arrival: 3 * coflow.Millisecond, Flows: []coflow.FlowSpec{{Src: 2, Dst: 3, Size: 9 * coflow.MB}}},
			{ID: 3, Arrival: 100 * coflow.Millisecond, DependsOn: []coflow.CoFlowID{1, 2},
				Flows: []coflow.FlowSpec{{Src: 1, Dst: 0, Size: u}, {Src: 3, Dst: 2, Size: u}}},
		}}, Config{}},
		{"stragglers", &trace.Trace{Name: "slow", NumPorts: 2, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 10 * coflow.MB}}},
		}}, Config{Dynamics: &Dynamics{Seed: 1, StragglerProb: 1.0, Slowdown: 4}}},
		{"restarts", &trace.Trace{Name: "restart", NumPorts: 2, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 50 * coflow.MB}}},
		}}, Config{Dynamics: &Dynamics{Seed: 1, RestartProb: 1.0, RestartAt: 0.5}}},
		{"pipelining", &trace.Trace{Name: "pipe", NumPorts: 2, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
			{ID: 2, Arrival: coflow.Millisecond, Flows: []coflow.FlowSpec{
				{Src: 1, Dst: 0, Size: 2 * coflow.MB}, {Src: 0, Dst: 1, Size: 3 * coflow.MB}}},
		}}, Config{Pipelining: &Pipelining{Seed: 1, Frac: 0.7, AvailDelay: 20 * coflow.Millisecond}}},
		{"dynamics-and-pipelining-dag", &trace.Trace{Name: "mix", NumPorts: 4, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{
				{Src: 0, Dst: 1, Size: 8 * coflow.MB}, {Src: 2, Dst: 3, Size: 5 * coflow.MB}}},
			{ID: 2, Arrival: 2 * coflow.Millisecond, Flows: []coflow.FlowSpec{{Src: 3, Dst: 0, Size: 6 * coflow.MB}}},
			{ID: 3, Arrival: 0, DependsOn: []coflow.CoFlowID{1, 2}, Flows: []coflow.FlowSpec{
				{Src: 1, Dst: 2, Size: 4 * coflow.MB}, {Src: 0, Dst: 3, Size: 2 * coflow.MB}}},
		}}, Config{
			Dynamics:   &Dynamics{Seed: 3, StragglerProb: 0.5, Slowdown: 2, RestartProb: 0.5},
			Pipelining: &Pipelining{Seed: 4, Frac: 0.5, AvailDelay: 16 * coflow.Millisecond},
		}},
		{"idle-gap", &trace.Trace{Name: "gap", NumPorts: 2, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
			{ID: 2, Arrival: 3600 * coflow.Second, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
		}}, Config{}},
		{"zero-size-flow-gating", &trace.Trace{Name: "zero", NumPorts: 2, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 0}}},
			{ID: 2, Arrival: 0, DependsOn: []coflow.CoFlowID{1},
				Flows: []coflow.FlowSpec{{Src: 1, Dst: 0, Size: coflow.MB}}},
		}}, Config{}},
		{"mid-interval-arrival", &trace.Trace{Name: "mid", NumPorts: 2, Specs: []*coflow.Spec{
			{ID: 1, Arrival: 3 * coflow.Millisecond, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
			{ID: 2, Arrival: 5 * coflow.Millisecond, Flows: []coflow.FlowSpec{{Src: 1, Dst: 0, Size: coflow.MB}}},
		}}, Config{}},
	}
	for _, sc := range scenarios {
		for _, scheduler := range []string{"saath", "aalo", "varys"} {
			t.Run(sc.name+"/"+scheduler, func(t *testing.T) {
				tick := runOn(t, sc.tr, scheduler, sc.cfg)
				event := runOn(t, sc.tr, scheduler, eventCfg(sc.cfg))
				sameResult(t, sc.name, tick, event)
				if sc.name != "zero-size-flow-gating" {
					// A zero-size coflow completes instantly (CCT 0),
					// legitimately violating the CCT > 0 invariant.
					checkConservation(t, sc.tr, event)
				}
			})
		}
	}
}

// TestEventModeCycleDetected mirrors TestDAGCycleDetected: specs in a
// dependency cycle must surface the same error, not hang the heap.
func TestEventModeCycleDetected(t *testing.T) {
	tr := &trace.Trace{Name: "cycle", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, DependsOn: []coflow.CoFlowID{2},
			Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 1}}},
		{ID: 2, Arrival: 0, DependsOn: []coflow.CoFlowID{1},
			Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 1}}},
	}}
	s, err := sched.New("saath", sched.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(tr, s, Config{Mode: ModeEvent})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("cycle not detected in event mode: %v", err)
	}
}

// TestEventModeHorizonParity requires the two modes to fail a
// livelocked run with the identical horizon error, boundary included.
func TestEventModeHorizonParity(t *testing.T) {
	tr := &trace.Trace{Name: "stuck", NumPorts: 2, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: coflow.MB}}},
	}}
	_, tickErr := Run(tr.Clone(), nullScheduler{}, Config{Horizon: coflow.Second})
	_, eventErr := Run(tr.Clone(), nullScheduler{}, Config{Horizon: coflow.Second, Mode: ModeEvent})
	if tickErr == nil || eventErr == nil {
		t.Fatalf("livelock not detected: tick=%v event=%v", tickErr, eventErr)
	}
	if tickErr.Error() != eventErr.Error() {
		t.Fatalf("horizon errors differ:\n tick: %v\nevent: %v", tickErr, eventErr)
	}
}

// steadyEventEngine is steadyEngine mid-run in event mode: the heap
// holds exactly the recurring schedule epoch, warmed through a few
// real steps.
func steadyEventEngine(t testing.TB, scheduler string) *engine {
	e := steadyEngine(t, scheduler)
	e.evq = &eventQueue{}
	e.epochAt = -1
	e.pushEpoch(e.now)
	for i := 0; i < 3; i++ {
		if ok, err := e.step(e.cfg.Delta); !ok || err != nil {
			t.Fatalf("warm step %d: ok=%v err=%v", i, ok, err)
		}
	}
	return e
}

// TestEngineEventSteadyStateZeroAlloc is the event-loop counterpart of
// TestEngineTickSteadyStateZeroAlloc: a steady-state event dispatch —
// pop the epoch, schedule, audit, advance, push the next epoch —
// performs zero heap allocations.
func TestEngineEventSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, scheduler := range []string{"saath", "aalo", "uc-tcp"} {
		e := steadyEventEngine(t, scheduler)
		n := testing.AllocsPerRun(100, func() {
			if ok, err := e.step(e.cfg.Delta); !ok || err != nil {
				t.Fatalf("step: ok=%v err=%v", ok, err)
			}
		})
		if n != 0 {
			t.Errorf("%s: steady-state event dispatch allocates %.1f times, want 0", scheduler, n)
		}
	}
}
