package sim

import (
	"fmt"

	"saath/internal/sched"
	"saath/internal/trace"
)

// Mode selects the engine's run loop. Both modes are pinned
// byte-identical by the golden equivalence tests — Mode changes how
// fast a simulation runs, never what it computes.
type Mode uint8

const (
	// ModeTick is the fixed-interval reference loop: the engine walks
	// every δ boundary while work is active and scans the pending trace
	// for releases each round — the paper's discrete-time simulator,
	// unchanged. It is the default until a config opts into ModeEvent.
	ModeTick Mode = iota
	// ModeEvent is the discrete-event loop: arrivals, availability
	// injections, schedule epochs and probe emissions are a
	// deterministic min-heap, so idle stretches and the per-tick
	// pending-trace scans cost nothing. Schedule epochs still fire at
	// exactly the tick engine's δ boundaries, which is what keeps the
	// two modes bit-for-bit equivalent.
	ModeEvent
)

// String returns the CLI spelling of the mode ("tick" / "event").
func (m Mode) String() string {
	switch m {
	case ModeTick:
		return "tick"
	case ModeEvent:
		return "event"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode parses the CLI spelling accepted by the -engine flags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "tick":
		return ModeTick, nil
	case "event":
		return ModeEvent, nil
	}
	return 0, fmt.Errorf(`sim: unknown engine mode %q (want "tick" or "event")`, s)
}

// Engine is a reusable, validated simulation engine: one Config,
// any number of independent Run calls. Engines are stateless between
// runs and safe to share across goroutines as long as each Run gets
// its own trace clone and scheduler instance (the same contract the
// free Run function has always had).
type Engine interface {
	// Run replays tr under scheduler s and returns the outcome. The
	// trace is mutated during simulation — pass a private clone when
	// the caller retains it.
	Run(tr *trace.Trace, s sched.Scheduler) (*Result, error)
	// Mode reports which run loop the engine executes.
	Mode() Mode
	// Config returns the engine's validated configuration (defaults
	// not yet applied — zero fields still mean "paper default").
	Config() Config
}

// New validates cfg and returns the Engine for its Mode. This is the
// construction-time half of the redesigned entry point: configuration
// mistakes (negative δ, out-of-range dynamics fractions, an unknown
// mode) surface here as descriptive errors instead of being silently
// defaulted or exploding mid-run.
func New(cfg Config) (Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return simEngine{cfg: cfg}, nil
}

// simEngine implements Engine for both modes; the per-run state lives
// in the unexported engine struct built inside Run.
type simEngine struct {
	cfg Config
}

func (e simEngine) Mode() Mode     { return e.cfg.Mode }
func (e simEngine) Config() Config { return e.cfg }

func (e simEngine) Run(tr *trace.Trace, s sched.Scheduler) (*Result, error) {
	return run(tr, s, e.cfg)
}

// Validate reports configuration errors: negative Delta/PortRate/
// Horizon, out-of-range Dynamics/Pipelining probabilities and
// fractions, an unknown Mode. Zero values are not errors — they mean
// "use the paper default" throughout (see withDefaults). Run and New
// both call it, so a bad config fails at construction with a message
// naming the field rather than mid-simulation.
func (c Config) Validate() error {
	if c.Delta < 0 {
		return fmt.Errorf("sim: negative Delta %v", c.Delta)
	}
	if c.PortRate < 0 {
		return fmt.Errorf("sim: negative PortRate %v B/s", float64(c.PortRate))
	}
	if c.Horizon < 0 {
		return fmt.Errorf("sim: negative Horizon %v", c.Horizon)
	}
	if c.Mode != ModeTick && c.Mode != ModeEvent {
		return fmt.Errorf("sim: unknown engine mode %d", uint8(c.Mode))
	}
	if d := c.Dynamics; d != nil {
		if d.StragglerProb < 0 || d.StragglerProb > 1 {
			return fmt.Errorf("sim: Dynamics.StragglerProb %g outside [0,1]", d.StragglerProb)
		}
		if d.RestartProb < 0 || d.RestartProb > 1 {
			return fmt.Errorf("sim: Dynamics.RestartProb %g outside [0,1]", d.RestartProb)
		}
		if d.Slowdown < 0 {
			return fmt.Errorf("sim: negative Dynamics.Slowdown %g", d.Slowdown)
		}
		if d.RestartAt < 0 || d.RestartAt >= 1 {
			if d.RestartAt != 0 { // zero means "default 0.5"
				return fmt.Errorf("sim: Dynamics.RestartAt %g outside (0,1)", d.RestartAt)
			}
		}
	}
	if p := c.Pipelining; p != nil {
		if p.Frac < 0 || p.Frac > 1 {
			return fmt.Errorf("sim: Pipelining.Frac %g outside [0,1]", p.Frac)
		}
		if p.AvailDelay < 0 {
			return fmt.Errorf("sim: negative Pipelining.AvailDelay %v", p.AvailDelay)
		}
	}
	return nil
}
