package sim

import (
	"testing"

	"saath/internal/coflow"
	"saath/internal/obs"
	"saath/internal/telemetry"
	"saath/internal/trace"
)

// TestEventKindNamesAligned pins obs.EventKindNames to the engine's
// eventKind enum: same size, declaration-order labels. The obs package
// cannot import sim, so the alignment is enforced here.
func TestEventKindNamesAligned(t *testing.T) {
	if got := int(eventProbe) + 1; got != obs.NumEventKinds {
		t.Fatalf("eventKind enum has %d values, obs.NumEventKinds = %d", got, obs.NumEventKinds)
	}
	want := map[eventKind]string{
		eventFlowDone: "flow_done",
		eventArrival:  "arrival",
		eventAvail:    "avail",
		eventEpoch:    "epoch",
		eventProbe:    "probe",
	}
	for kind, name := range want {
		if got := obs.EventKindNames[kind]; got != name {
			t.Errorf("EventKindNames[%d] = %q, want %q", kind, got, name)
		}
	}
}

// countersTrace exercises every event kind: a DAG edge (flow_done),
// staggered arrivals, and pipelined availability.
func countersTrace() *trace.Trace {
	return &trace.Trace{Name: "counted", NumPorts: 4, Specs: []*coflow.Spec{
		{ID: 1, Arrival: 0, Flows: []coflow.FlowSpec{{Src: 0, Dst: 1, Size: 4 * coflow.MB}}},
		{ID: 2, Arrival: 3 * coflow.Millisecond, Flows: []coflow.FlowSpec{{Src: 2, Dst: 3, Size: 2 * coflow.MB}}},
		{ID: 3, Arrival: 0, DependsOn: []coflow.CoFlowID{1},
			Flows: []coflow.FlowSpec{{Src: 1, Dst: 2, Size: coflow.MB}}},
	}}
}

func TestCountersTickMode(t *testing.T) {
	c := &obs.EngineCounters{}
	res := runOn(t, countersTrace(), "saath", Config{Counters: c})
	if c.Mode != "tick" {
		t.Errorf("mode = %q", c.Mode)
	}
	if c.Ticks == 0 || c.Ticks != int64(res.Intervals) {
		t.Errorf("ticks = %d, intervals = %d", c.Ticks, res.Intervals)
	}
	if c.Epochs != int64(res.Intervals) || c.Schedule.Count != c.Epochs {
		t.Errorf("epochs = %d, schedule samples = %d, intervals = %d", c.Epochs, c.Schedule.Count, res.Intervals)
	}
	if c.Admitted != 3 || c.Retired != 3 {
		t.Errorf("admitted = %d retired = %d, want 3/3", c.Admitted, c.Retired)
	}
	if c.EventsDispatched != 0 || c.HeapPushes != 0 {
		t.Errorf("tick mode counted events: dispatched = %d pushes = %d", c.EventsDispatched, c.HeapPushes)
	}
	if res.Ports != 4 {
		t.Errorf("result ports = %d, want 4", res.Ports)
	}
}

func TestCountersEventMode(t *testing.T) {
	cfg := Config{
		Mode:       ModeEvent,
		Pipelining: &Pipelining{Seed: 1, Frac: 1.0, AvailDelay: 16 * coflow.Millisecond},
	}
	cfg.Probes = []telemetry.Probe{telemetry.NewSuite(telemetry.Spec{Enabled: true})}
	c := &obs.EngineCounters{}
	cfg.Counters = c
	res := runOn(t, countersTrace(), "saath", cfg)

	if c.Mode != "event" {
		t.Errorf("mode = %q", c.Mode)
	}
	if c.Ticks != 0 {
		t.Errorf("event mode counted %d ticks", c.Ticks)
	}
	if c.Epochs != int64(res.Intervals) {
		t.Errorf("epochs = %d, intervals = %d", c.Epochs, res.Intervals)
	}
	var byKind int64
	for _, n := range c.EventsByKind {
		byKind += n
	}
	if byKind != c.EventsDispatched || c.EventsDispatched == 0 {
		t.Errorf("dispatched = %d, by-kind sum = %d", c.EventsDispatched, byKind)
	}
	if got := c.EventsByKind[eventArrival]; got != 3 {
		t.Errorf("arrival events = %d, want 3", got)
	}
	if got := c.EventsByKind[eventEpoch]; got != int64(res.Intervals) {
		t.Errorf("epoch events = %d, intervals = %d", got, res.Intervals)
	}
	if got := c.EventsByKind[eventProbe]; got != int64(res.Intervals) {
		t.Errorf("probe events = %d, intervals = %d", got, res.Intervals)
	}
	if c.EventsByKind[eventFlowDone] == 0 {
		t.Error("DAG trace dispatched no flow_done events")
	}
	if c.EventsByKind[eventAvail] == 0 {
		t.Error("pipelined trace dispatched no avail events")
	}
	if c.HeapPushes != c.EventsDispatched {
		// Every pushed event pops in a run-to-completion simulation.
		t.Errorf("pushes = %d, dispatched = %d", c.HeapPushes, c.EventsDispatched)
	}
	if c.HeapMax < 2 {
		t.Errorf("heap high-water = %d, want >= 2", c.HeapMax)
	}
}

// TestCountersDoNotPerturbResult is the out-of-band guarantee: the
// same run with and without counters attached produces field-identical
// results in both modes.
func TestCountersDoNotPerturbResult(t *testing.T) {
	for _, mode := range []Mode{ModeTick, ModeEvent} {
		cfg := Config{
			Mode:       mode,
			Dynamics:   &Dynamics{Seed: 2, StragglerProb: 0.5, Slowdown: 2, RestartProb: 0.5},
			Pipelining: &Pipelining{Seed: 3, Frac: 0.5, AvailDelay: 16 * coflow.Millisecond},
		}
		bare := runOn(t, countersTrace(), "saath", cfg)
		counted := cfg
		counted.Counters = &obs.EngineCounters{}
		observed := runOn(t, countersTrace(), "saath", counted)
		sameResult(t, mode.String(), bare, observed)
	}
}

// TestEngineTickCountersZeroAlloc extends the steady-state guard to
// the counting path: attaching EngineCounters adds zero allocations
// per tick.
func TestEngineTickCountersZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := steadyEngine(t, "saath")
	e.cfg.Counters = &obs.EngineCounters{}
	n := testing.AllocsPerRun(100, func() {
		if err := e.tick(e.cfg.Delta); err != nil {
			t.Fatal(err)
		}
		e.now += e.cfg.Delta
	})
	if n != 0 {
		t.Errorf("counted steady-state tick allocates %.1f times per interval, want 0", n)
	}
}

// TestEngineEventCountersZeroAlloc is the event-loop counterpart:
// counting a steady-state dispatch adds zero allocations.
func TestEngineEventCountersZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := steadyEventEngine(t, "saath")
	e.cfg.Counters = &obs.EngineCounters{}
	n := testing.AllocsPerRun(100, func() {
		if ok, err := e.step(e.cfg.Delta); !ok || err != nil {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	})
	if n != 0 {
		t.Errorf("counted steady-state event dispatch allocates %.1f times, want 0", n)
	}
}
