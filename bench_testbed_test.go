package saath

// Testbed agent-step benchmarks and allocation guards. The in-process
// agent's Step+Report cycle is the testbed's hot loop — it runs once
// per agent per δ boundary, so at 10^5 agents a single stray
// allocation per step becomes 10^5 allocations per boundary and the
// scale story collapses. The cost contract is therefore explicit: one
// steady-state Step+Report against a live coordinator allocates
// exactly nothing (guarded at 0, not 1.25x, in BENCH_baseline.json's
// testbed_layer section). Run `make bench-testbed` for the smoke +
// guard.

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// benchStepDelta is the sync interval the step benchmarks advance by,
// the paper's 8ms default.
const benchStepDelta = 8 * time.Millisecond

// benchTestbedCluster builds a Manual virtual-clock coordinator with
// nPorts in-process agents, registers coflows wide enough to put
// flows on every port — sized in petabytes so nothing completes
// within any benchmark horizon — and pushes one schedule so every
// agent holds rated flows. One warm-up Step+Report per agent grows
// the reusable report buffers; everything after is steady state.
func benchTestbedCluster(tb testing.TB, nPorts, nCoFlows int) []*InprocAgent {
	tb.Helper()
	s, err := NewScheduler("saath", DefaultParams())
	if err != nil {
		tb.Fatal(err)
	}
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	coord, err := NewCoordinator(CoordinatorConfig{
		Scheduler: s, NumPorts: nPorts, PortRate: GbpsRate(1),
		Delta: benchStepDelta, Clock: vc, Manual: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { coord.Close() })
	agents := make([]*InprocAgent, nPorts)
	for i := range agents {
		if agents[i], err = coord.AttachInproc(i); err != nil {
			tb.Fatal(err)
		}
	}
	for id := 0; id < nCoFlows; id++ {
		spec := &Spec{ID: CoFlowID(id + 1)}
		for p := 0; p < nPorts; p++ {
			spec.Flows = append(spec.Flows, FlowSpec{
				Src: PortID(p), Dst: PortID((p + 1) % nPorts), Size: Bytes(1) << 50,
			})
		}
		if err := coord.Register(spec); err != nil {
			tb.Fatal(err)
		}
	}
	coord.StepSchedule()
	for _, a := range agents {
		a.Step(benchStepDelta)
		a.Report()
	}
	return agents
}

// BenchmarkTestbedAgentStep measures one agent's steady-state boundary
// work — advance every held flow by δ, push the progress report into
// the coordinator — on a 64-port cluster with 4 flows per agent.
func BenchmarkTestbedAgentStep(b *testing.B) {
	agents := benchTestbedCluster(b, 64, 4)
	a := agents[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(benchStepDelta)
		a.Report()
	}
}

// testbedBaseline mirrors BENCH_baseline.json's testbed_layer section.
type testbedBaseline struct {
	TestbedLayer struct {
		AgentStep struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
			NsPerOp     float64 `json:"ns_per_op"`
		} `json:"agent_step"`
	} `json:"testbed_layer"`
}

// TestTestbedLayerGuards enforces the testbed cost contract: a
// steady-state agent Step+Report allocates exactly nothing.
func TestTestbedLayerGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base testbedBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.TestbedLayer.AgentStep.NsPerOp == 0 {
		t.Fatal("testbed_layer.agent_step missing from BENCH_baseline.json")
	}
	if base.TestbedLayer.AgentStep.AllocsPerOp != 0 {
		t.Fatalf("testbed_layer.agent_step baseline records %.0f allocs/op; the contract is exactly 0",
			base.TestbedLayer.AgentStep.AllocsPerOp)
	}

	agents := benchTestbedCluster(t, 64, 4)
	a := agents[0]
	if got := testing.AllocsPerRun(200, func() {
		a.Step(benchStepDelta)
		a.Report()
	}); got != 0 {
		t.Errorf("agent step: %.1f allocs/op, want exactly 0", got)
	}
}
