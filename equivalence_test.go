package saath

// The dense-index scheduling path (flow-indexed allocation vectors,
// incremental contention, cached sendable sets) is a pure refactor of
// the map-based engine: results must be bit-identical, not merely
// close. The constants below were recorded by running the map-based
// engine (commit before the dense-index rewrite) over two seeds of the
// small synthetic workload for three policies; this test replays the
// same simulations and compares AvgCCT (exact float bits), makespan,
// interval count and the sha256 of the full telemetry metrics JSON —
// the last of which pins every exported series and histogram,
// including the contention (k_c) histogram fed by the incremental
// index.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

func goldenSynthConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed: seed, NumPorts: 20, NumCoFlows: 30,
		MeanInterArrival: 30 * Millisecond,
		SingleFlowFrac:   0.25, EqualLengthFrac: 0.5, WideFracNarrowCF: 0.3,
		SmallFracNarrow: 0.8, SmallFracWide: 0.4,
		MinSmall: MB, MaxSmall: 50 * MB,
		MinLarge: 50 * MB, MaxLarge: 500 * MB,
	}
}

func TestGoldenEquivalenceWithMapBasedEngine(t *testing.T) {
	golden := []struct {
		scheduler  string
		seed       int64
		avgCCTBits uint64
		makespan   int64
		intervals  int
		metricsSHA string
	}{
		{"saath", 1, 0x3fe0d51f81a5870e, 4424000, 529, "160a1704598db2b3126d1f9807d23b05faa6210a849339471d13913ad3516767"},
		{"saath", 2, 0x3fe381bfbdf090f7, 3528000, 439, "c41266ccc118fd9147b9b8c0b3f066219e11f6e67c5361ba59c94d8aad4625fa"},
		{"varys", 1, 0x3fda36b0070afdd2, 4368000, 522, "16bf81c8627e28f6d12e7d0a30ed61d9819fb6f2d65eea5ec83ced0264e97686"},
		{"varys", 2, 0x3fddea272cdc48b3, 3544000, 441, "52db0ba2a742f4a9acac49052bd35fdbfdd4dbfc1379acd790f1904bb5248c34"},
		{"aalo", 1, 0x3fe92c3cb0d20c19, 4416000, 529, "778bcebe8fb7dbfd0d03991c2339b8b212bc127e5066f58246a224c8bcc33c4f"},
		{"aalo", 2, 0x3feea32e5bec484b, 3560000, 443, "df52ec67b0b092bb0c09da52d47a5bc9271bad6fb0e16cb600523f177d9a6d91"},
	}
	for _, g := range golden {
		g := g
		t.Run(fmt.Sprintf("%s/seed%d", g.scheduler, g.seed), func(t *testing.T) {
			tr := Synthesize(goldenSynthConfig(g.seed), fmt.Sprintf("golden-%d", g.seed))
			res, m, err := SimulateWithTelemetry(tr, g.scheduler, SimConfig{},
				TelemetrySpec{Enabled: true, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if bits := math.Float64bits(res.AvgCCT()); bits != g.avgCCTBits {
				t.Errorf("AvgCCT bits = %#016x (%.9fs), want %#016x",
					bits, res.AvgCCT(), g.avgCCTBits)
			}
			if int64(res.Makespan) != g.makespan {
				t.Errorf("Makespan = %d, want %d", int64(res.Makespan), g.makespan)
			}
			if res.Intervals != g.intervals {
				t.Errorf("Intervals = %d, want %d", res.Intervals, g.intervals)
			}
			b, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if sum := fmt.Sprintf("%x", sha256.Sum256(b)); sum != g.metricsSHA {
				t.Errorf("metrics JSON sha256 = %s, want %s", sum, g.metricsSHA)
			}
		})
	}
}
