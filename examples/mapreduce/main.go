// MapReduce DAG example: schedules a multi-stage analytics query
// (§4.3) in which each stage's shuffle is one CoFlow and stages are
// chained by dependencies, plus a two-wave job whose waves serialize.
//
// The example compares Saath and Aalo on the same query mix and
// reports per-stage and end-to-end (query) completion times.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sort"

	"saath"
)

// query builds a 3-stage Hive-style query on a 20-node cluster:
//
//	stage 0: 4 mappers -> 4 reducers (scan + partial aggregate)
//	stage 1: 4 -> 2 (join), depends on stage 0
//	stage 2: 2 -> 1 (final aggregate), depends on stage 1
//
// A single CoFlow per stage lets the scheduler slow fast flows within
// a stage without hurting the stage's completion (§4.3).
func query(base saath.CoFlowID, startPort saath.PortID, arrival saath.Time, sizeMB int64) []*saath.Spec {
	mk := func(id saath.CoFlowID, stage int, deps []saath.CoFlowID, srcs, dsts []saath.PortID, szMB int64) *saath.Spec {
		spec := &saath.Spec{ID: id, Arrival: arrival, Stage: stage, DependsOn: deps}
		for _, s := range srcs {
			for _, d := range dsts {
				spec.Flows = append(spec.Flows, saath.FlowSpec{
					Src: s, Dst: d, Size: saath.Bytes(szMB) * saath.MB / saath.Bytes(len(srcs)*len(dsts)),
				})
			}
		}
		return spec
	}
	p := func(offsets ...int) []saath.PortID {
		out := make([]saath.PortID, len(offsets))
		for i, o := range offsets {
			out[i] = startPort + saath.PortID(o)
		}
		return out
	}
	s0 := mk(base, 0, nil, p(0, 1, 2, 3), p(4, 5, 6, 7), sizeMB)
	s1 := mk(base+1, 1, []saath.CoFlowID{base}, p(4, 5, 6, 7), p(8, 9), sizeMB/2)
	s2 := mk(base+2, 2, []saath.CoFlowID{base + 1}, p(8, 9), p(10), sizeMB/4)
	return []*saath.Spec{s0, s1, s2}
}

// waves builds a two-wave MapReduce job: the same reducers receive a
// second wave of map output only after the first wave completes; each
// wave is its own CoFlow in a serialized DAG (§4.3).
func waves(base saath.CoFlowID, startPort saath.PortID, arrival saath.Time) []*saath.Spec {
	w1 := &saath.Spec{ID: base, Arrival: arrival, Wave: 0}
	w2 := &saath.Spec{ID: base + 1, Arrival: arrival, Wave: 1, DependsOn: []saath.CoFlowID{base}}
	for i := 0; i < 3; i++ {
		src := startPort + saath.PortID(i)
		dst := startPort + saath.PortID(3+i%2)
		w1.Flows = append(w1.Flows, saath.FlowSpec{Src: src, Dst: dst, Size: 30 * saath.MB})
		w2.Flows = append(w2.Flows, saath.FlowSpec{Src: src, Dst: dst, Size: 20 * saath.MB})
	}
	return []*saath.Spec{w1, w2}
}

func main() {
	// Three overlapping queries plus a two-wave job share the cluster.
	var specs []*saath.Spec
	specs = append(specs, query(1, 0, 0, 400)...)
	specs = append(specs, query(10, 4, 50*saath.Millisecond, 800)...)
	specs = append(specs, query(20, 8, 120*saath.Millisecond, 200)...)
	specs = append(specs, waves(30, 12, 30*saath.Millisecond)...)
	tr := &saath.Trace{Name: "mapreduce-dag", NumPorts: 20, Specs: specs}

	for _, schedName := range []string{"aalo", "saath"} {
		res, err := saath.Simulate(tr, schedName, saath.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		byID := map[saath.CoFlowID]saath.CoFlowSimResult{}
		for _, c := range res.CoFlows {
			byID[c.ID] = c
		}
		fmt.Printf("== %s ==\n", schedName)
		for _, q := range []struct {
			name string
			ids  []saath.CoFlowID
		}{
			{"query A (3 stages)", []saath.CoFlowID{1, 2, 3}},
			{"query B (3 stages)", []saath.CoFlowID{10, 11, 12}},
			{"query C (3 stages)", []saath.CoFlowID{20, 21, 22}},
			{"waved job (2 waves)", []saath.CoFlowID{30, 31}},
		} {
			var end saath.Time
			var stages []string
			for _, id := range q.ids {
				c := byID[id]
				if c.DoneAt > end {
					end = c.DoneAt
				}
				stages = append(stages, fmt.Sprintf("%.2fs", c.CCT.Seconds()))
			}
			sort.Strings(stages)
			fmt.Printf("  %-20s stages %v, query completes at %.2fs\n", q.name, stages, end.Seconds())
		}
		fmt.Printf("  average CCT across all stage-coflows: %.3fs\n\n", res.AvgCCT())
	}
}
