// Study quickstart: declare a small evaluation — two schedulers over
// seeded draws of an FB-like workload, with telemetry and derived
// tables — as one composable saath.NewStudy, and run it on the
// in-process pool. The same declaration shards across machines: run it
// with saath.StudySharded{Index: i, Count: n} per process, export each
// Result with WriteShard, and reassemble with saath.MergeStudyShards —
// the merged tables are byte-identical to this single-process run.
//
//	go run ./examples/study
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"saath"
)

func main() {
	// The workload: a seeded generator, so every grid seed draws a
	// fresh workload and statistics pool across the draws.
	source := saath.SynthSource("fb-mini", func(seed int64) *saath.Trace {
		return saath.Synthesize(saath.SynthConfig{
			Seed:             seed,
			NumPorts:         30,
			NumCoFlows:       100,
			MeanInterArrival: 40 * saath.Millisecond,
			SingleFlowFrac:   0.23,
			EqualLengthFrac:  0.65,
			WideFracNarrowCF: 0.44,
			SmallFracNarrow:  0.82,
			SmallFracWide:    0.41,
			MinSmall:         saath.MB,
			MaxSmall:         100 * saath.MB,
			MinLarge:         100 * saath.MB,
			MaxLarge:         2 * saath.GB,
		}, "fb-mini")
	})

	// The declaration: validated up front (a typo'd scheduler or a
	// baseline outside the list fails here, before any simulation).
	st, err := saath.NewStudy("quickstart",
		saath.WithDescription("aalo vs saath on a small FB-like mix, two seeds, with telemetry"),
		saath.WithTraces(source),
		saath.WithSchedulers("aalo", "saath"),
		saath.WithSeeds(1, 2),
		saath.WithBaseline("aalo"),
		saath.WithTelemetry(saath.TelemetrySpec{Enabled: true}),
		saath.WithDerived(
			saath.DerivedCCT("quickstart — per-scheduler CCT"),
			saath.DerivedSpeedup("quickstart — per-coflow speedup over aalo", ""),
			saath.DerivedCCTCDF("quickstart", 12),
			saath.DerivedTelemetry("quickstart — telemetry (per-interval)"),
		))
	if err != nil {
		log.Fatal(err)
	}

	// The execution backend is pluggable; the tables are a pure
	// function of the declaration, not of who runs it or how wide.
	res, err := st.Run(context.Background(), saath.StudyPool{Parallel: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}

	tables, err := res.Tables()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
