// Quickstart: simulate a Facebook-like CoFlow workload under Aalo and
// Saath and print the paper's headline metric — the per-CoFlow CCT
// speedup distribution — plus the Fig. 1 out-of-sync micro-example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"saath"
)

func main() {
	// A small FB-mix workload: 30 ports, 100 CoFlows, the published
	// width and size distribution.
	cfg := saath.SynthConfig{
		Seed:             1,
		NumPorts:         30,
		NumCoFlows:       100,
		MeanInterArrival: 40 * saath.Millisecond,
		SingleFlowFrac:   0.23,
		EqualLengthFrac:  0.65,
		WideFracNarrowCF: 0.44,
		SmallFracNarrow:  0.82,
		SmallFracWide:    0.41,
		MinSmall:         saath.MB,
		MaxSmall:         100 * saath.MB,
		MinLarge:         100 * saath.MB,
		MaxLarge:         2 * saath.GB,
	}
	tr := saath.Synthesize(cfg, "quickstart")
	fmt.Printf("workload: %d coflows on %d ports, %.1f GB total\n",
		len(tr.Specs), tr.NumPorts, float64(tr.TotalBytes())/float64(saath.GB))

	aalo, err := saath.Simulate(tr, "aalo", saath.SimConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sres, err := saath.Simulate(tr, "saath", saath.SimConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aalo : avg CCT %.3fs over %d coflows\n", aalo.AvgCCT(), len(aalo.CoFlows))
	fmt.Printf("saath: avg CCT %.3fs over %d coflows\n", sres.AvgCCT(), len(sres.CoFlows))
	fmt.Printf("speedup using saath: %s\n\n", saath.SummarizeSpeedup(aalo, sres))

	// The Fig. 1 example: four CoFlows on three sender ports. Under
	// Aalo's per-port FIFO, C2's flows drift apart (out-of-sync) and
	// block the short CoFlows; Saath's all-or-none + LCoF packs them.
	fig1 := &saath.Trace{Name: "fig1", NumPorts: 9, Specs: []*saath.Spec{
		{ID: 1, Arrival: 0, Flows: []saath.FlowSpec{flow(0, 3)}},
		{ID: 2, Arrival: 1 * saath.Millisecond, Flows: []saath.FlowSpec{
			flow(0, 4), flow(1, 5), flow(2, 6)}},
		{ID: 3, Arrival: 2 * saath.Millisecond, Flows: []saath.FlowSpec{flow(1, 7)}},
		{ID: 4, Arrival: 3 * saath.Millisecond, Flows: []saath.FlowSpec{flow(2, 8)}},
	}}
	for _, name := range []string{"aalo", "saath"} {
		res, err := saath.Simulate(fig1, name, saath.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fig1 under %-5s: ", name)
		for _, c := range res.CoFlows {
			fmt.Printf("C%d=%.0fms ", c.ID, c.CCT.Seconds()*1000)
		}
		fmt.Printf("(avg %.0fms)\n", res.AvgCCT()*1000)
	}
}

// flow returns a 100 ms (12.5 MB at 1 Gbps) unit flow.
func flow(src, dst saath.PortID) saath.FlowSpec {
	return saath.FlowSpec{Src: src, Dst: dst, Size: saath.Bytes(12_500_000)}
}
