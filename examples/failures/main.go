// Failures example: injects cluster dynamics — stragglers (tasks that
// can only source data at a fraction of line rate) and mid-flow
// restarts after node failures — and shows how Saath's §4.3 handling
// (SRTF re-queueing from observed progress, straggler-aware MADD caps)
// affects CoFlow completion times compared to Aalo under the same
// faults.
//
//	go run ./examples/failures
package main

import (
	"fmt"
	"log"
	"sort"

	"saath"
)

func main() {
	tr := saath.Synthesize(saath.SynthConfig{
		Seed: 11, NumPorts: 24, NumCoFlows: 80,
		MeanInterArrival: 40 * saath.Millisecond,
		SingleFlowFrac:   0.23, EqualLengthFrac: 0.65, WideFracNarrowCF: 0.44,
		SmallFracNarrow: 0.82, SmallFracWide: 0.41,
		MinSmall: saath.MB, MaxSmall: 100 * saath.MB,
		MinLarge: 100 * saath.MB, MaxLarge: saath.GB,
	}, "failures")

	faults := &saath.Dynamics{
		Seed:          3,
		StragglerProb: 0.05, // 5% of flows run on a slow node...
		Slowdown:      4,    // ...that sources data at 1/4 line rate
		RestartProb:   0.02, // 2% of flows lose all progress once...
		RestartAt:     0.5,  // ...they reach 50% (node failure + re-run)
	}

	fmt.Println("scheduler   faults   avg CCT    p50      p90      p99")
	for _, schedName := range []string{"aalo", "saath"} {
		for _, injected := range []bool{false, true} {
			cfg := saath.SimConfig{}
			if injected {
				cfg.Dynamics = faults
			}
			res, err := saath.Simulate(tr, schedName, cfg)
			if err != nil {
				log.Fatal(err)
			}
			ccts := make([]float64, len(res.CoFlows))
			for i, c := range res.CoFlows {
				ccts[i] = c.CCT.Seconds()
			}
			sort.Float64s(ccts)
			fmt.Printf("%-11s %-8v %-10.3f %-8.3f %-8.3f %-8.3f\n",
				schedName, injected, res.AvgCCT(),
				pct(ccts, 50), pct(ccts, 90), pct(ccts, 99))
		}
	}

	// Head-to-head under faults: the paper's claim is that Saath's
	// dynamics handling keeps the *tail* in check when flows straggle.
	cfg := saath.SimConfig{Dynamics: faults}
	aalo, err := saath.Simulate(tr, "aalo", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := saath.Simulate(tr, "saath", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedup using saath under faults: %s\n", saath.SummarizeSpeedup(aalo, fast))
}

func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
