// Sensitivity example: sweeps the start queue threshold S and the
// arrival-speed factor A through the public API (the Fig. 14(a)/(d)
// experiments) and prints Saath's and Aalo's speedup over default
// Aalo at each point.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"sort"

	"saath"
)

func workload() *saath.Trace {
	return saath.Synthesize(saath.SynthConfig{
		Seed: 5, NumPorts: 24, NumCoFlows: 80,
		MeanInterArrival: 30 * saath.Millisecond,
		SingleFlowFrac:   0.23, EqualLengthFrac: 0.65, WideFracNarrowCF: 0.44,
		SmallFracNarrow: 0.82, SmallFracWide: 0.41,
		MinSmall: saath.MB, MaxSmall: 100 * saath.MB,
		MinLarge: 100 * saath.MB, MaxLarge: saath.GB,
	}, "sensitivity")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func main() {
	tr := workload()
	base, err := saath.Simulate(tr, "aalo", saath.SimConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig 14(a): sensitivity to start queue threshold S")
	fmt.Println("S        saath   aalo")
	for _, s := range []saath.Bytes{10 * saath.MB, 100 * saath.MB, saath.GB, 10 * saath.GB} {
		p := saath.DefaultParams()
		p.Queues.StartThreshold = s
		sres, err := saath.SimulateWith(tr, "saath", p, saath.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		ares, err := saath.SimulateWith(tr, "aalo", p, saath.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %.2fx   %.2fx\n", fmt.Sprintf("%dMB", s/saath.MB),
			median(saath.Speedups(base, sres)), median(saath.Speedups(base, ares)))
	}

	fmt.Println("\nFig 14(d): sensitivity to arrival speed A (A>1 = arrivals A x faster)")
	fmt.Println("A        saath   aalo")
	for _, a := range []float64{0.5, 1, 2, 4} {
		scaled := tr.Clone()
		scaled.ScaleArrivals(1 / a)
		sres, err := saath.Simulate(scaled, "saath", saath.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		ares, err := saath.Simulate(scaled, "aalo", saath.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %.2fx   %.2fx\n", a,
			median(saath.Speedups(base, sres)), median(saath.Speedups(base, ares)))
	}
}
