// Testbed example: runs the real distributed prototype — coordinator,
// four local agents, token-bucket-paced TCP data plane — entirely
// in-process, registers CoFlows through the REST API like a compute
// framework would, and prints measured CCTs.
//
//	go run ./examples/testbed
package main

import (
	"fmt"
	"log"
	"time"

	"saath"
)

func main() {
	const ports = 4

	scheduler, err := saath.NewScheduler("saath", saath.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	coord, err := saath.NewCoordinator(saath.CoordinatorConfig{
		Scheduler: scheduler,
		NumPorts:  ports,
		PortRate:  saath.Rate(25e6), // 25 MB/s per port on localhost
		Delta:     10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	go coord.Serve()
	defer coord.Close()
	fmt.Printf("coordinator: control=%s http=%s\n", coord.ControlAddr(), coord.HTTPAddr())

	agents := make([]*saath.Agent, ports)
	for i := range agents {
		agents[i], err = saath.NewAgent(saath.AgentConfig{
			Port:            i,
			CoordinatorAddr: coord.ControlAddr(),
			StatsInterval:   10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer agents[i].Close()
		fmt.Printf("agent %d: data=%s\n", i, agents[i].DataAddr())
	}

	// The framework side: register a shuffle-like CoFlow (2 mappers ->
	// 2 reducers) and two short single-flow CoFlows that contend with
	// it, the Fig. 1 situation on real sockets.
	client := saath.NewClient(coord.HTTPAddr())
	specs := []*saath.Spec{
		{ID: 1, Flows: []saath.FlowSpec{
			{Src: 0, Dst: 2, Size: 1 * saath.MB},
			{Src: 0, Dst: 3, Size: 1 * saath.MB},
			{Src: 1, Dst: 2, Size: 1 * saath.MB},
			{Src: 1, Dst: 3, Size: 1 * saath.MB},
		}},
		{ID: 2, Flows: []saath.FlowSpec{{Src: 0, Dst: 3, Size: 256 * saath.KB}}},
		{ID: 3, Flows: []saath.FlowSpec{{Src: 1, Dst: 2, Size: 256 * saath.KB}}},
	}
	for _, s := range specs {
		if err := client.Register(s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered coflow %d (%d flows, %.1f MB)\n",
			s.ID, s.Width(), float64(s.TotalSize())/float64(saath.MB))
	}

	results, err := client.WaitForResults(len(specs), time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompleted:")
	for _, r := range results {
		fmt.Printf("  coflow %d: width %d, %.1f MB, CCT %v\n",
			r.ID, r.Width, float64(r.Bytes)/float64(saath.MB), r.CCT.Round(time.Millisecond))
	}
	calls, mean, max := coord.SchedOverhead()
	fmt.Printf("\ncoordinator: %d schedule computations, mean %v, max %v\n", calls, mean, max)
}
