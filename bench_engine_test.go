package saath

// Engine-layer benchmarks and the tick-vs-event performance guard.
// The sparse long-tail workload is the event engine's home turf: a
// long stream of short coflows separated by multi-δ idle gaps, plus
// occasional large stragglers that keep a thin active tail alive. The
// tick engine pays an O(pending) admission scan at every δ boundary
// and an O(pending) next-arrival scan per idle gap — O(N²) over the
// trace — while the event engine pops arrivals off a heap and runs
// epochs only while work is active. BENCH_baseline.json's
// "engine_layer" section records the numbers at the event-engine
// introduction; TestEngineLayerGuards fails if the event engine slips
// below 5x the tick engine on this workload or regresses its
// allocation count past 1.25x baseline. Run `make bench-engine` for
// the smoke + guard.

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// sparseTailTrace builds the sparse long-tail workload: single-flow
// coflows arriving every 64ms (8δ at the default δ=8ms) over rotating
// port pairs, with every 500th coflow inflated to a 64MB straggler
// whose ~half-second drain forms the long tail.
func sparseTailTrace() *Trace {
	const (
		numPorts = 32
		n        = 8000
		gap      = 64 * Millisecond
	)
	specs := make([]*Spec, n)
	for i := 0; i < n; i++ {
		size := Bytes(MB)
		if i%1000 == 250 {
			size = 64 * MB
		}
		specs[i] = &Spec{
			ID:      CoFlowID(i + 1),
			Arrival: Time(i) * gap,
			Flows: []FlowSpec{{
				Src:  PortID(i % numPorts),
				Dst:  PortID((i + 7) % numPorts),
				Size: size,
			}},
		}
	}
	return &Trace{Name: "sparse-tail", NumPorts: numPorts, Specs: specs}
}

func benchEngineSparse(b *testing.B, mode EngineMode) {
	tr := sparseTailTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(tr, "saath", SimConfig{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CoFlows) != len(tr.Specs) {
			b.Fatalf("completed %d coflows", len(res.CoFlows))
		}
	}
}

// BenchmarkEngineTickSparse replays the sparse long-tail trace on the
// fixed-δ tick loop.
func BenchmarkEngineTickSparse(b *testing.B) { benchEngineSparse(b, ModeTick) }

// BenchmarkEngineEventSparse replays the same trace on the
// discrete-event loop; results are byte-identical by contract.
func BenchmarkEngineEventSparse(b *testing.B) { benchEngineSparse(b, ModeEvent) }

// engineBaseline mirrors BENCH_baseline.json's engine_layer section.
type engineBaseline struct {
	EngineLayer struct {
		TickSparse struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"tick_sparse"`
		EventSparse struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"event_sparse"`
		MinSpeedup float64 `json:"min_speedup"`
	} `json:"engine_layer"`
}

// TestEngineLayerGuards enforces the event engine's performance
// contract on the sparse long-tail workload: at least the recorded
// minimum wall-clock speedup over the tick engine (min-of-3 timings
// on each side), identical results, and allocation counts within
// 1.25x of the recorded baselines for both loops.
func TestEngineLayerGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("timings and allocation counts are not meaningful under -race")
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base engineBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.EngineLayer.MinSpeedup == 0 {
		t.Fatal("engine_layer.min_speedup missing from BENCH_baseline.json")
	}

	tr := sparseTailTrace()
	run := func(mode EngineMode) *SimResult {
		t.Helper()
		res, err := Simulate(tr, "saath", SimConfig{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	timeRun := func(mode EngineMode) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			run(mode)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	tickRes, eventRes := run(ModeTick), run(ModeEvent)
	if tickRes.AvgCCT() != eventRes.AvgCCT() || tickRes.Makespan != eventRes.Makespan {
		t.Fatalf("modes disagree: tick CCT=%v makespan=%v, event CCT=%v makespan=%v",
			tickRes.AvgCCT(), tickRes.Makespan, eventRes.AvgCCT(), eventRes.Makespan)
	}

	tick, event := timeRun(ModeTick), timeRun(ModeEvent)
	speedup := float64(tick) / float64(event)
	t.Logf("sparse long-tail: tick %v, event %v — %.1fx", tick, event, speedup)
	if speedup < base.EngineLayer.MinSpeedup {
		t.Errorf("event engine speedup %.2fx below the guarded %.1fx (tick %v, event %v)",
			speedup, base.EngineLayer.MinSpeedup, tick, event)
	}

	checkAllocs := func(name string, baseline, got float64) {
		t.Helper()
		if baseline == 0 {
			t.Errorf("%s: missing from BENCH_baseline.json engine_layer", name)
			return
		}
		if limit := baseline * 1.25; got > limit {
			t.Errorf("%s: %.0f allocs/op exceeds 1.25x baseline %.0f", name, got, baseline)
		}
	}
	checkAllocs("tick_sparse", base.EngineLayer.TickSparse.AllocsPerOp,
		testing.AllocsPerRun(1, func() { run(ModeTick) }))
	checkAllocs("event_sparse", base.EngineLayer.EventSparse.AllocsPerOp,
		testing.AllocsPerRun(1, func() { run(ModeEvent) }))
}
