module saath

go 1.24
